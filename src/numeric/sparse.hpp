// Sparse linear algebra for MNA systems: triplet assembly with duplicate
// summing, compressed row storage, and a fill-in-aware sparse LU with
// threshold partial pivoting.  MNA matrices from ladder/mesh networks are
// extremely sparse; factor-once/solve-many with sparse storage is what makes
// the fixed-timestep linear solver cheap per step (paper §3, [6]).
//
// The factorization is split into a *symbolic* phase (pivot order, fill
// pattern, CSR factor layout — value-independent once the pivot sequence is
// chosen) and a *numeric* phase that recomputes factor values into the
// cached pattern.  Every sparse_matrix carries a pattern-version token that
// changes only on structural edits, so solvers can detect when the cached
// symbolic analysis is still valid and refactor values only — the hot path
// for switching workloads where a DE event changes stamp values but not the
// sparsity pattern.
#ifndef SCA_NUMERIC_SPARSE_HPP
#define SCA_NUMERIC_SPARSE_HPP

#include <algorithm>
#include <atomic>
#include <cmath>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "numeric/dense.hpp"
#include "util/report.hpp"

namespace sca::num {

namespace detail {
/// Monotonic token source shared by all sparse matrices: two matrices (or
/// the same matrix before/after a structural edit) never share a version.
/// Atomic so that independent simulation contexts running on worker threads
/// (core/run_set) can edit matrices concurrently without racing the counter.
inline std::uint64_t next_pattern_version() noexcept {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}
}  // namespace detail

/// Sparse square matrix assembled from (row, col, value) triplets.
/// Duplicate entries are summed, matching the "stamping" style of MNA.
template <typename T>
class sparse_matrix {
public:
    sparse_matrix() = default;
    explicit sparse_matrix(std::size_t n) { resize(n); }

    /// Grow to `n` unknowns, preserving existing entries (MNA views allocate
    /// branch unknowns lazily while stamping). Shrinking is not supported.
    void resize(std::size_t n) {
        util::require(n >= n_, "sparse_matrix", "resize cannot shrink the matrix");
        if (n == n_ && rows_idx_.size() == n) return;
        n_ = n;
        rows_idx_.resize(n);
        rows_val_.resize(n);
        pattern_version_ = detail::next_pattern_version();
    }

    void clear() {
        rows_idx_.assign(n_, {});
        rows_val_.assign(n_, {});
        nnz_ = 0;
        pattern_version_ = detail::next_pattern_version();
    }

    /// Reset all values to zero keeping the sparsity pattern (and therefore
    /// the pattern version) intact — the values-only rebuild path.
    void zero_values() {
        for (auto& vals : rows_val_) std::fill(vals.begin(), vals.end(), T{});
    }

    [[nodiscard]] std::size_t size() const noexcept { return n_; }
    [[nodiscard]] std::size_t nonzeros() const noexcept { return nnz_; }

    /// Token identifying the current sparsity pattern: changes whenever an
    /// entry is created, the matrix is cleared, or it is resized — never on
    /// value updates.  Unique across matrix instances.
    [[nodiscard]] std::uint64_t pattern_version() const noexcept {
        return pattern_version_;
    }

    /// Add `value` at (r, c); sums with any existing entry (MNA stamp).
    void add(std::size_t r, std::size_t c, T value) {
        util::require(r < n_ && c < n_, "sparse_matrix", "index out of range");
        auto& idx = rows_idx_[r];
        auto& val = rows_val_[r];
        const auto it = std::lower_bound(idx.begin(), idx.end(), c);
        if (it != idx.end() && *it == c) {
            val[static_cast<std::size_t>(it - idx.begin())] += value;
        } else {
            const auto pos = static_cast<std::size_t>(it - idx.begin());
            idx.insert(it, c);
            val.insert(val.begin() + static_cast<std::ptrdiff_t>(pos), value);
            ++nnz_;
            pattern_version_ = detail::next_pattern_version();
        }
    }

    /// Overwrite the value of an *existing* entry (values-only update; the
    /// pattern version is untouched). Errors if (r, c) is not in the pattern.
    void set_entry(std::size_t r, std::size_t c, T value) {
        util::require(r < n_ && c < n_, "sparse_matrix", "index out of range");
        auto& idx = rows_idx_[r];
        const auto it = std::lower_bound(idx.begin(), idx.end(), c);
        util::require(it != idx.end() && *it == c, "sparse_matrix",
                      "set_entry target is not in the sparsity pattern");
        rows_val_[r][static_cast<std::size_t>(it - idx.begin())] = value;
    }

    [[nodiscard]] T get(std::size_t r, std::size_t c) const {
        util::require(r < n_ && c < n_, "sparse_matrix", "index out of range");
        if (rows_idx_.size() != n_) return T{};
        const auto& idx = rows_idx_[r];
        const auto it = std::lower_bound(idx.begin(), idx.end(), c);
        if (it != idx.end() && *it == c) {
            return rows_val_[r][static_cast<std::size_t>(it - idx.begin())];
        }
        return T{};
    }

    /// y = this * x
    [[nodiscard]] std::vector<T> multiply(const std::vector<T>& x) const {
        std::vector<T> y;
        multiply_into(x, y);
        return y;
    }

    /// y = this * x into a caller-owned buffer (no allocation once y has
    /// capacity); x and y must be distinct vectors.
    void multiply_into(const std::vector<T>& x, std::vector<T>& y) const {
        util::require(x.size() == n_, "sparse_matrix", "multiply: dimension mismatch");
        util::require(&x != &y, "sparse_matrix", "multiply: aliased output");
        y.assign(n_, T{});
        for (std::size_t r = 0; r < rows_idx_.size(); ++r) {
            T acc{};
            const auto& idx = rows_idx_[r];
            const auto& val = rows_val_[r];
            for (std::size_t k = 0; k < idx.size(); ++k) acc += val[k] * x[idx[k]];
            y[r] = acc;
        }
    }

    /// Dense copy (tests, small systems, ablation benches).
    [[nodiscard]] dense_matrix<T> to_dense() const {
        dense_matrix<T> d(n_, n_);
        for (std::size_t r = 0; r < rows_idx_.size(); ++r) {
            for (std::size_t k = 0; k < rows_idx_[r].size(); ++k) {
                d(r, rows_idx_[r][k]) = rows_val_[r][k];
            }
        }
        return d;
    }

    /// this = this * alpha + other * beta (pattern union).
    void add_scaled(const sparse_matrix<T>& other, T beta) {
        util::require(other.size() == n_, "sparse_matrix", "add_scaled: size mismatch");
        for (std::size_t r = 0; r < other.rows_idx_.size(); ++r) {
            for (std::size_t k = 0; k < other.rows_idx_[r].size(); ++k) {
                add(r, other.rows_idx_[r][k], beta * other.rows_val_[r][k]);
            }
        }
    }

    /// Row access for the factorization (index array, value array).
    [[nodiscard]] const std::vector<std::size_t>& row_indices(std::size_t r) const {
        return rows_idx_[r];
    }
    [[nodiscard]] const std::vector<T>& row_values(std::size_t r) const { return rows_val_[r]; }

private:
    std::size_t n_ = 0;
    std::size_t nnz_ = 0;
    std::uint64_t pattern_version_ = detail::next_pattern_version();
    std::vector<std::vector<std::size_t>> rows_idx_;
    std::vector<std::vector<T>> rows_val_;
};

/// Sparse LU with threshold partial pivoting.
///
/// `factor()` is the full (symbolic + numeric) factorization: right-looking
/// row-based Gaussian elimination that chooses the pivot order, discovers
/// the fill pattern, and compresses the factors into CSR arrays.  The
/// symbolic outcome — pivot permutation, L/U patterns, CSR layout — is kept
/// and tagged with the source matrix's pattern version.
///
/// `refactor()` is the numeric-only phase: given a matrix with the *same*
/// pattern version, it replays the elimination left-looking into the cached
/// CSR layout with the frozen pivot order.  The arithmetic (operation order
/// included) is identical to `factor()`, so for a value-stable pivot order
/// the two produce bit-identical factors.  It refuses (returns false) when
/// the pattern changed or a frozen pivot becomes numerically unacceptable;
/// the caller then falls back to `factor()`.
template <typename T>
class sparse_lu {
public:
    sparse_lu() = default;
    explicit sparse_lu(const sparse_matrix<T>& a, double pivot_threshold = 0.1) {
        factor(a, pivot_threshold);
    }

    void factor(const sparse_matrix<T>& a, double pivot_threshold = 0.1) {
        n_ = a.size();
        util::require(pivot_threshold > 0.0 && pivot_threshold <= 1.0, "sparse_lu",
                      "pivot threshold must be in (0, 1]");
        factored_ = false;
        symbolic_valid_ = false;
        // Working copy of the rows.  Exact numerical cancellations are kept
        // as explicit zeros so the resulting fill pattern depends only on
        // the structure and the pivot sequence — the property refactor()
        // relies on to reuse it for different values.
        std::vector<std::vector<std::size_t>> rows_idx(n_);
        std::vector<std::vector<T>> rows_val(n_);
        for (std::size_t r = 0; r < n_; ++r) {
            rows_idx[r] = a.row_indices(r);
            rows_val[r] = a.row_values(r);
        }
        perm_.resize(n_);
        for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;
        std::vector<std::vector<std::size_t>> lower_idx(n_);
        std::vector<std::vector<T>> lower_val(n_);

        std::vector<T> work(n_, T{});          // scatter buffer for row updates
        std::vector<std::size_t> work_touched;  // columns touched in `work`

        const auto entry_at = [&](std::size_t r, std::size_t c) -> T {
            const auto& idx = rows_idx[r];
            const auto it = std::lower_bound(idx.begin(), idx.end(), c);
            if (it != idx.end() && *it == c) {
                return rows_val[r][static_cast<std::size_t>(it - idx.begin())];
            }
            return T{};
        };

        for (std::size_t k = 0; k < n_; ++k) {
            // --- pivot selection: largest |a_ik| among rows i >= k, but accept
            // the diagonal row when it is within `pivot_threshold` of the best
            // (keeps permutations, and therefore fill, low).
            std::size_t pivot = n_;
            double best = 0.0;
            double diag_mag = 0.0;
            for (std::size_t r = k; r < n_; ++r) {
                const T v = entry_at(r, k);
                const double mag = pivot_magnitude(v);
                if (r == k) diag_mag = mag;
                if (mag > best) {
                    best = mag;
                    pivot = r;
                }
            }
            util::require(best > 0.0, "sparse_lu", "matrix is singular");
            if (diag_mag >= pivot_threshold * best) pivot = k;
            if (pivot != k) {
                std::swap(rows_idx[k], rows_idx[pivot]);
                std::swap(rows_val[k], rows_val[pivot]);
                std::swap(perm_[k], perm_[pivot]);
                // The already-accumulated L multipliers travel with the row.
                std::swap(lower_idx[k], lower_idx[pivot]);
                std::swap(lower_val[k], lower_val[pivot]);
            }

            const T pivot_value = entry_at(k, k);
            const T inv_piv = T(1) / pivot_value;

            // --- eliminate column k from all rows below.  Rows are touched
            // on *structural* presence of (r, k), not value, so the L
            // pattern is value-independent given the pivot sequence.
            for (std::size_t r = k + 1; r < n_; ++r) {
                const auto& ridx0 = rows_idx[r];
                const auto kit = std::lower_bound(ridx0.begin(), ridx0.end(), k);
                if (kit == ridx0.end() || *kit != k) continue;
                const T a_rk =
                    rows_val[r][static_cast<std::size_t>(kit - ridx0.begin())];
                const T mult = a_rk * inv_piv;
                lower_idx[r].push_back(k);
                lower_val[r].push_back(mult);

                // row_r -= mult * row_k  (columns > k), via scatter/gather.
                work_touched.clear();
                const auto& ridx = rows_idx[r];
                const auto& rval = rows_val[r];
                for (std::size_t j = 0; j < ridx.size(); ++j) {
                    if (ridx[j] > k) {
                        work[ridx[j]] = rval[j];
                        work_touched.push_back(ridx[j]);
                    }
                }
                const auto& kidx = rows_idx[k];
                const auto& kval = rows_val[k];
                for (std::size_t j = 0; j < kidx.size(); ++j) {
                    if (kidx[j] <= k) continue;
                    if (work[kidx[j]] == T{} &&
                        std::find(work_touched.begin(), work_touched.end(), kidx[j]) ==
                            work_touched.end()) {
                        work_touched.push_back(kidx[j]);
                    }
                    work[kidx[j]] -= mult * kval[j];
                }
                std::sort(work_touched.begin(), work_touched.end());
                auto& new_idx = rows_idx[r];
                auto& new_val = rows_val[r];
                new_idx.clear();
                new_val.clear();
                for (std::size_t c : work_touched) {
                    new_idx.push_back(c);
                    new_val.push_back(work[c]);
                    work[c] = T{};
                }
            }
        }

        // --- compress the factors into CSR.  U row i holds columns >= i in
        // ascending order with the diagonal first; L row i holds columns
        // < i in ascending elimination order (unit diagonal implicit).
        u_ptr_.assign(n_ + 1, 0);
        l_ptr_.assign(n_ + 1, 0);
        for (std::size_t i = 0; i < n_; ++i) {
            u_ptr_[i + 1] = u_ptr_[i] + rows_idx[i].size();
            l_ptr_[i + 1] = l_ptr_[i] + lower_idx[i].size();
        }
        u_col_.resize(u_ptr_[n_]);
        u_val_.resize(u_ptr_[n_]);
        l_col_.resize(l_ptr_[n_]);
        l_val_.resize(l_ptr_[n_]);
        inv_diag_.resize(n_);
        for (std::size_t i = 0; i < n_; ++i) {
            std::copy(rows_idx[i].begin(), rows_idx[i].end(), u_col_.begin() + u_ptr_[i]);
            std::copy(rows_val[i].begin(), rows_val[i].end(), u_val_.begin() + u_ptr_[i]);
            std::copy(lower_idx[i].begin(), lower_idx[i].end(),
                      l_col_.begin() + l_ptr_[i]);
            std::copy(lower_val[i].begin(), lower_val[i].end(),
                      l_val_.begin() + l_ptr_[i]);
            util::require(u_ptr_[i] < u_ptr_[i + 1] && u_col_[u_ptr_[i]] == i,
                          "sparse_lu", "factor lost the diagonal");
            inv_diag_[i] = T(1) / u_val_[u_ptr_[i]];
        }
        pattern_version_ = a.pattern_version();
        symbolic_valid_ = true;
        factored_ = true;
        ++symbolic_count_;
        ++numeric_count_;
    }

    /// Numeric-only refactorization against the cached symbolic analysis.
    /// Returns false — leaving the factorization unusable until the next
    /// factor() — when no analysis is cached, `a`'s pattern version differs
    /// from the analyzed one, or a pivot under the frozen order degenerates
    /// (zero, non-finite, or vanishing relative to its U row).
    bool refactor(const sparse_matrix<T>& a) {
        factored_ = false;
        if (!symbolic_valid_ || a.size() != n_ ||
            a.pattern_version() != pattern_version_) {
            return false;
        }
        work_.assign(n_, T{});
        for (std::size_t i = 0; i < n_; ++i) {
            // Scatter the original (permuted) row, then eliminate with the
            // frozen multiplier pattern — same operations in the same order
            // as factor(), so values match it bit for bit.
            const std::size_t orig = perm_[i];
            const auto& aidx = a.row_indices(orig);
            const auto& avals = a.row_values(orig);
            for (std::size_t j = 0; j < aidx.size(); ++j) work_[aidx[j]] = avals[j];
            for (std::size_t jj = l_ptr_[i]; jj < l_ptr_[i + 1]; ++jj) {
                const std::size_t k = l_col_[jj];
                const T mult = work_[k] * inv_diag_[k];
                l_val_[jj] = mult;
                for (std::size_t uu = u_ptr_[k] + 1; uu < u_ptr_[k + 1]; ++uu) {
                    work_[u_col_[uu]] -= mult * u_val_[uu];
                }
            }
            double row_max = 0.0;
            for (std::size_t uu = u_ptr_[i]; uu < u_ptr_[i + 1]; ++uu) {
                const T v = work_[u_col_[uu]];
                u_val_[uu] = v;
                work_[u_col_[uu]] = T{};
                row_max = std::max(row_max, pivot_magnitude(v));
            }
            for (std::size_t jj = l_ptr_[i]; jj < l_ptr_[i + 1]; ++jj) {
                work_[l_col_[jj]] = T{};
            }
            const double diag_mag = pivot_magnitude(u_val_[u_ptr_[i]]);
            if (!(diag_mag > 0.0) || !std::isfinite(row_max) ||
                diag_mag < k_refactor_stability * row_max) {
                return false;
            }
            inv_diag_[i] = T(1) / u_val_[u_ptr_[i]];
        }
        factored_ = true;
        ++numeric_count_;
        return true;
    }

    [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) const {
        std::vector<T> x;
        solve_into(b, x);
        return x;
    }

    /// Solve into a caller-owned buffer (no allocation once x has capacity);
    /// b and x must be distinct vectors.
    void solve_into(const std::vector<T>& b, std::vector<T>& x) const {
        util::require(factored_, "sparse_lu", "solve before factor");
        util::require(b.size() == n_, "sparse_lu", "solve: dimension mismatch");
        util::require(&b != &x, "sparse_lu", "solve: aliased output");
        x.assign(n_, T{});
        // Forward: L y = P b  (L has unit diagonal, stored per-row).
        for (std::size_t i = 0; i < n_; ++i) {
            T acc = b[perm_[i]];
            for (std::size_t j = l_ptr_[i]; j < l_ptr_[i + 1]; ++j) {
                acc -= l_val_[j] * x[l_col_[j]];
            }
            x[i] = acc;
        }
        // Backward: U x = y. Row i of U holds columns >= i, diagonal first.
        for (std::size_t ii = n_; ii-- > 0;) {
            T acc = x[ii];
            for (std::size_t j = u_ptr_[ii] + 1; j < u_ptr_[ii + 1]; ++j) {
                acc -= u_val_[j] * x[u_col_[j]];
            }
            x[ii] = acc / u_val_[u_ptr_[ii]];
        }
    }

    [[nodiscard]] bool factored() const noexcept { return factored_; }
    [[nodiscard]] std::size_t size() const noexcept { return n_; }

    /// True when a symbolic analysis (pivot order + fill pattern) is cached.
    [[nodiscard]] bool symbolic_valid() const noexcept { return symbolic_valid_; }
    /// Pattern version of the matrix the cached analysis was computed for.
    [[nodiscard]] std::uint64_t analyzed_pattern_version() const noexcept {
        return pattern_version_;
    }

    /// Factorization counters: full symbolic analyses vs. numeric factor
    /// passes (every factor() counts once in each; refactor() only numeric).
    [[nodiscard]] std::uint64_t symbolic_count() const noexcept { return symbolic_count_; }
    [[nodiscard]] std::uint64_t numeric_count() const noexcept { return numeric_count_; }

    /// Number of stored entries in L + U (fill-in diagnostic).
    [[nodiscard]] std::size_t factor_nonzeros() const {
        return u_col_.size() + l_col_.size();
    }

    /// Serialize the cached symbolic analysis (pivot permutation + CSR
    /// factor patterns) as a flat word vector for checkpointing.  Pattern
    /// versions are process-local tokens and deliberately not included — a
    /// restoring process re-tags the analysis against its own rebuilt matrix
    /// via adopt_symbolic().
    [[nodiscard]] std::vector<std::uint64_t> export_symbolic() const {
        util::require(symbolic_valid_, "sparse_lu",
                      "export_symbolic before any factorization");
        std::vector<std::uint64_t> w;
        w.reserve(3 + 3 * n_ + u_col_.size() + l_col_.size());
        w.push_back(n_);
        w.push_back(u_col_.size());
        w.push_back(l_col_.size());
        for (std::size_t p : perm_) w.push_back(p);
        for (std::size_t i = 1; i <= n_; ++i) w.push_back(u_ptr_[i]);
        for (std::size_t i = 1; i <= n_; ++i) w.push_back(l_ptr_[i]);
        for (std::size_t c : u_col_) w.push_back(c);
        for (std::size_t c : l_col_) w.push_back(c);
        return w;
    }

    /// Install a symbolic analysis previously produced by export_symbolic(),
    /// re-tagged against matrix `a` (the restored process's rebuild of the
    /// matrix the analysis came from).  Validates internal consistency and
    /// that every structural entry of `a` falls inside the adopted fill
    /// pattern, so a later refactor(a) replays the frozen pivot order
    /// bit-identically to the exporting process.  Leaves the numeric factor
    /// invalid — call refactor(a) to populate values.  Returns false (state
    /// unchanged) on any inconsistency.
    bool adopt_symbolic(const std::vector<std::uint64_t>& w, const sparse_matrix<T>& a) {
        if (w.size() < 3) return false;
        const auto n = static_cast<std::size_t>(w[0]);
        const auto unz = static_cast<std::size_t>(w[1]);
        const auto lnz = static_cast<std::size_t>(w[2]);
        if (n != a.size()) return false;
        if (w.size() != 3 + 3 * n + unz + lnz) return false;
        std::size_t at = 3;
        std::vector<std::size_t> perm(n), u_ptr(n + 1, 0), l_ptr(n + 1, 0);
        std::vector<std::size_t> u_col(unz), l_col(lnz);
        std::vector<bool> seen(n, false);
        for (std::size_t i = 0; i < n; ++i) {
            perm[i] = static_cast<std::size_t>(w[at++]);
            if (perm[i] >= n || seen[perm[i]]) return false;
            seen[perm[i]] = true;
        }
        for (std::size_t i = 1; i <= n; ++i) {
            u_ptr[i] = static_cast<std::size_t>(w[at++]);
            if (u_ptr[i] < u_ptr[i - 1] || u_ptr[i] > unz) return false;
        }
        for (std::size_t i = 1; i <= n; ++i) {
            l_ptr[i] = static_cast<std::size_t>(w[at++]);
            if (l_ptr[i] < l_ptr[i - 1] || l_ptr[i] > lnz) return false;
        }
        if (u_ptr[n] != unz || l_ptr[n] != lnz) return false;
        for (std::size_t k = 0; k < unz; ++k) u_col[k] = static_cast<std::size_t>(w[at++]);
        for (std::size_t k = 0; k < lnz; ++k) l_col[k] = static_cast<std::size_t>(w[at++]);
        for (std::size_t i = 0; i < n; ++i) {
            // U row i: ascending columns >= i, diagonal first; L row i:
            // ascending columns < i (elimination order == column order).
            if (u_ptr[i] == u_ptr[i + 1] || u_col[u_ptr[i]] != i) return false;
            for (std::size_t k = u_ptr[i] + 1; k < u_ptr[i + 1]; ++k) {
                if (u_col[k] >= n || u_col[k] <= u_col[k - 1]) return false;
            }
            for (std::size_t k = l_ptr[i]; k < l_ptr[i + 1]; ++k) {
                if (l_col[k] >= i) return false;
                if (k > l_ptr[i] && l_col[k] <= l_col[k - 1]) return false;
            }
            // Every structural entry of the permuted a-row must land in this
            // row's L∪U pattern, or refactor()'s scatter would leak values.
            for (std::size_t c : a.row_indices(perm[i])) {
                const bool in_u =
                    std::binary_search(u_col.begin() + static_cast<std::ptrdiff_t>(u_ptr[i]),
                                       u_col.begin() + static_cast<std::ptrdiff_t>(u_ptr[i + 1]), c);
                const bool in_l =
                    std::binary_search(l_col.begin() + static_cast<std::ptrdiff_t>(l_ptr[i]),
                                       l_col.begin() + static_cast<std::ptrdiff_t>(l_ptr[i + 1]), c);
                if (!in_u && !in_l) return false;
            }
        }
        n_ = n;
        perm_ = std::move(perm);
        u_ptr_ = std::move(u_ptr);
        l_ptr_ = std::move(l_ptr);
        u_col_ = std::move(u_col);
        l_col_ = std::move(l_col);
        u_val_.assign(unz, T{});
        l_val_.assign(lnz, T{});
        inv_diag_.assign(n_, T{});
        pattern_version_ = a.pattern_version();
        symbolic_valid_ = true;
        factored_ = false;
        ++symbolic_count_;
        return true;
    }

private:
    /// Refactor bails to a full factorization when a frozen pivot drops
    /// below this fraction of its U row's magnitude — catastrophic growth
    /// guard; legitimate value changes in MNA stamps stay far above it.
    static constexpr double k_refactor_stability = 1e-12;

    std::size_t n_ = 0;
    bool factored_ = false;
    bool symbolic_valid_ = false;
    std::uint64_t pattern_version_ = 0;
    std::uint64_t symbolic_count_ = 0;
    std::uint64_t numeric_count_ = 0;
    std::vector<std::size_t> perm_;
    std::vector<std::size_t> u_ptr_, u_col_;  // CSR upper factor (diag first)
    std::vector<T> u_val_;
    std::vector<std::size_t> l_ptr_, l_col_;  // CSR unit-lower factor
    std::vector<T> l_val_;
    std::vector<T> inv_diag_;
    std::vector<T> work_;  // refactor scatter buffer
};

using sparse_matrix_d = sparse_matrix<double>;
using sparse_matrix_z = sparse_matrix<std::complex<double>>;
using sparse_lu_d = sparse_lu<double>;
using sparse_lu_z = sparse_lu<std::complex<double>>;

}  // namespace sca::num

#endif  // SCA_NUMERIC_SPARSE_HPP
