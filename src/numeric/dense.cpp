#include "numeric/dense.hpp"

namespace sca::num {

// Explicit instantiations keep the common cases out of every translation unit.
template class dense_matrix<double>;
template class dense_matrix<std::complex<double>>;
template class dense_lu<double>;
template class dense_lu<std::complex<double>>;

}  // namespace sca::num
