// Dense linear algebra: row-major matrix, LU factorization with partial
// pivoting, and the vector helpers the solvers need.  Templated on the scalar
// type so the same code serves real transient solves (double) and complex
// small-signal AC solves (std::complex<double>).
#ifndef SCA_NUMERIC_DENSE_HPP
#define SCA_NUMERIC_DENSE_HPP

#include <cmath>
#include <complex>
#include <cstddef>
#include <vector>

#include "util/report.hpp"

namespace sca::num {

/// Magnitude used for pivot selection; works for real and complex scalars.
template <typename T>
double pivot_magnitude(const T& v) {
    return std::abs(v);
}

/// Row-major dense matrix.
template <typename T>
class dense_matrix {
public:
    dense_matrix() = default;
    dense_matrix(std::size_t rows, std::size_t cols, T init = T{})
        : rows_(rows), cols_(cols), data_(rows * cols, init) {}

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

    T& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
    const T& operator()(std::size_t r, std::size_t c) const noexcept {
        return data_[r * cols_ + c];
    }

    void resize(std::size_t rows, std::size_t cols, T init = T{}) {
        rows_ = rows;
        cols_ = cols;
        data_.assign(rows * cols, init);
    }

    void fill(T value) { data_.assign(data_.size(), value); }

    /// y = this * x
    [[nodiscard]] std::vector<T> multiply(const std::vector<T>& x) const {
        util::require(x.size() == cols_, "dense_matrix", "multiply: dimension mismatch");
        std::vector<T> y(rows_, T{});
        for (std::size_t r = 0; r < rows_; ++r) {
            T acc{};
            const T* row = &data_[r * cols_];
            for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
            y[r] = acc;
        }
        return y;
    }

    [[nodiscard]] const std::vector<T>& data() const noexcept { return data_; }

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<T> data_;
};

/// LU factorization with partial (row) pivoting of a square dense matrix.
///
/// Factor once, solve many times — the usage pattern of a fixed-timestep
/// linear DAE solver where the iteration matrix only changes when a model
/// parameter or the timestep changes.
template <typename T>
class dense_lu {
public:
    dense_lu() = default;

    /// Factor `a` (copied). Throws sca::util::error on singularity.
    explicit dense_lu(const dense_matrix<T>& a) { factor(a); }

    void factor(const dense_matrix<T>& a) {
        util::require(a.rows() == a.cols(), "dense_lu", "matrix must be square");
        n_ = a.rows();
        lu_ = a;
        perm_.resize(n_);
        for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;

        for (std::size_t k = 0; k < n_; ++k) {
            // Partial pivoting: pick the largest magnitude entry in column k.
            std::size_t pivot = k;
            double best = pivot_magnitude(lu_(k, k));
            for (std::size_t r = k + 1; r < n_; ++r) {
                const double mag = pivot_magnitude(lu_(r, k));
                if (mag > best) {
                    best = mag;
                    pivot = r;
                }
            }
            util::require(best > 0.0, "dense_lu", "matrix is singular");
            if (pivot != k) {
                for (std::size_t c = 0; c < n_; ++c) std::swap(lu_(k, c), lu_(pivot, c));
                std::swap(perm_[k], perm_[pivot]);
            }
            const T inv_piv = T(1) / lu_(k, k);
            for (std::size_t r = k + 1; r < n_; ++r) {
                const T factor_rk = lu_(r, k) * inv_piv;
                lu_(r, k) = factor_rk;
                if (factor_rk == T{}) continue;
                for (std::size_t c = k + 1; c < n_; ++c) lu_(r, c) -= factor_rk * lu_(k, c);
            }
        }
        factored_ = true;
    }

    /// Solve A x = b using the stored factors.
    [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) const {
        std::vector<T> x;
        solve_into(b, x);
        return x;
    }

    /// Solve into a caller-owned buffer (no allocation once x has capacity);
    /// b and x must be distinct vectors.
    void solve_into(const std::vector<T>& b, std::vector<T>& x) const {
        util::require(factored_, "dense_lu", "solve before factor");
        util::require(b.size() == n_, "dense_lu", "solve: dimension mismatch");
        util::require(&b != &x, "dense_lu", "solve: aliased output");
        x.assign(n_, T{});
        // Apply permutation and forward-substitute L (unit diagonal).
        for (std::size_t i = 0; i < n_; ++i) {
            T acc = b[perm_[i]];
            for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
            x[i] = acc;
        }
        // Back-substitute U.
        for (std::size_t ii = n_; ii-- > 0;) {
            T acc = x[ii];
            for (std::size_t j = ii + 1; j < n_; ++j) acc -= lu_(ii, j) * x[j];
            x[ii] = acc / lu_(ii, ii);
        }
    }

    [[nodiscard]] bool factored() const noexcept { return factored_; }
    [[nodiscard]] std::size_t size() const noexcept { return n_; }

private:
    std::size_t n_ = 0;
    dense_matrix<T> lu_;
    std::vector<std::size_t> perm_;
    bool factored_ = false;
};

// ------------------------------------------------------- vector utilities --

/// Euclidean norm.
template <typename T>
double norm2(const std::vector<T>& x) {
    double acc = 0.0;
    for (const auto& v : x) acc += std::norm(std::complex<double>(v));
    return std::sqrt(acc);
}

inline double norm2(const std::vector<double>& x) {
    double acc = 0.0;
    for (double v : x) acc += v * v;
    return std::sqrt(acc);
}

/// Maximum-magnitude norm.
inline double norm_inf(const std::vector<double>& x) {
    double m = 0.0;
    for (double v : x) m = std::max(m, std::abs(v));
    return m;
}

/// y += alpha * x
template <typename T>
void axpy(T alpha, const std::vector<T>& x, std::vector<T>& y) {
    util::require(x.size() == y.size(), "axpy", "dimension mismatch");
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

using dense_matrix_d = dense_matrix<double>;
using dense_matrix_z = dense_matrix<std::complex<double>>;
using dense_lu_d = dense_lu<double>;
using dense_lu_z = dense_lu<std::complex<double>>;

}  // namespace sca::num

#endif  // SCA_NUMERIC_DENSE_HPP
