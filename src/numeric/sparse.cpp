#include "numeric/sparse.hpp"

namespace sca::num {

template class sparse_matrix<double>;
template class sparse_matrix<std::complex<double>>;
template class sparse_lu<double>;
template class sparse_lu<std::complex<double>>;

}  // namespace sca::num
