#include "lsf/ltf.hpp"

#include <cmath>
#include <numbers>

#include "util/report.hpp"

namespace sca::lsf {

std::vector<double> poly_from_roots(const std::vector<std::complex<double>>& roots) {
    // Multiply out with complex arithmetic, then verify realness.
    std::vector<std::complex<double>> p{1.0};
    for (const auto& r : roots) {
        std::vector<std::complex<double>> q(p.size() + 1, 0.0);
        for (std::size_t i = 0; i < p.size(); ++i) {
            q[i] -= r * p[i];   // constant-term contribution
            q[i + 1] += p[i];   // s * p
        }
        p = std::move(q);
    }
    std::vector<double> out(p.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
        util::require(std::abs(p[i].imag()) <= 1e-9 * (1.0 + std::abs(p[i].real())),
                      "poly_from_roots",
                      "roots are not closed under conjugation (complex coefficients)");
        out[i] = p[i].real();
    }
    return out;
}

std::complex<double> poly_eval(const std::vector<double>& coeffs, std::complex<double> s) {
    std::complex<double> acc = 0.0;
    for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * s + coeffs[i];
    return acc;
}

// -------------------------------------------------------------------- ltf_nd

ltf_nd::ltf_nd(const std::string& name, system& sys, signal in, signal out,
               std::vector<double> num, std::vector<double> den)
    : block(name, sys), in_(in), out_(out), num_(std::move(num)), den_(std::move(den)) {
    util::require(!den_.empty() && den_.size() >= 2, this->name(),
                  "denominator must have degree >= 1");
    util::require(den_.back() != 0.0, this->name(),
                  "leading denominator coefficient must be nonzero");
    util::require(!num_.empty(), this->name(), "numerator must not be empty");
    util::require(num_.size() <= den_.size(), this->name(),
                  "transfer function must be proper (num degree <= den degree)");
    x0_.assign(den_.size() - 1, 0.0);
}

void ltf_nd::set_initial_state(std::vector<double> x0) {
    util::require(x0.size() == order(), name(), "initial state dimension mismatch");
    x0_ = std::move(x0);
}

void ltf_nd::stamp(system& sys) {
    const std::size_t n = order();
    const double an = den_.back();

    // Direct feed-through for num degree == den degree.
    double d = 0.0;
    std::vector<double> b_red = num_;
    b_red.resize(den_.size(), 0.0);
    if (num_.size() == den_.size()) {
        d = num_.back() / an;
        for (std::size_t i = 0; i < den_.size(); ++i) b_red[i] -= d * den_[i];
    }

    // Internal states x1..xn (controllable canonical form):
    //   dx_i/dt = x_{i+1}                         (i < n)
    //   a_n dx_n/dt = -sum a_{i-1} x_i + u
    std::vector<std::size_t> xr(n);
    for (std::size_t i = 0; i < n; ++i) xr[i] = sys.add_state(*this, "x" + std::to_string(i));

    auto& es = sys.sys();
    for (std::size_t i = 0; i + 1 < n; ++i) {
        es.add_b(xr[i], xr[i], 1.0);
        es.add_a(xr[i], xr[i + 1], -1.0);
    }
    es.add_b(xr[n - 1], xr[n - 1], an);
    for (std::size_t i = 0; i < n; ++i) es.add_a(xr[n - 1], xr[i], den_[i]);
    es.add_a(xr[n - 1], in_.index(), -1.0);

    // Output equation: y = sum b'_j x_{j+1} + d u.
    const std::size_t r = sys.claim_driver(out_, *this);
    es.add_a(r, out_.index(), 1.0);
    for (std::size_t j = 0; j < n; ++j) {
        if (b_red[j] != 0.0) es.add_a(r, xr[j], -b_red[j]);
    }
    if (d != 0.0) es.add_a(r, in_.index(), -d);
}

void ltf_nd::stamp_init(system& sys, solver::equation_system& init, double) {
    const std::size_t n = order();
    const double an = den_.back();
    double d = 0.0;
    std::vector<double> b_red = num_;
    b_red.resize(den_.size(), 0.0);
    if (num_.size() == den_.size()) {
        d = num_.back() / an;
        for (std::size_t i = 0; i < den_.size(); ++i) b_red[i] -= d * den_[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t xi = sys.add_state(*this, "x" + std::to_string(i));
        init.add_a(xi, xi, 1.0);
        init.add_rhs_constant(xi, x0_[i]);
    }
    init.add_a(out_.index(), out_.index(), 1.0);
    for (std::size_t j = 0; j < n; ++j) {
        const std::size_t xj = sys.add_state(*this, "x" + std::to_string(j));
        if (b_red[j] != 0.0) init.add_a(out_.index(), xj, -b_red[j]);
    }
    if (d != 0.0) init.add_a(out_.index(), in_.index(), -d);
}

std::complex<double> ltf_nd::ideal_response(double f) const {
    const std::complex<double> s(0.0, 2.0 * std::numbers::pi * f);
    return poly_eval(num_, s) / poly_eval(den_, s);
}

// -------------------------------------------------------------------- ltf_zp

ltf_zp::ltf_zp(const std::string& name, system& sys, signal in, signal out,
               std::vector<std::complex<double>> zeros,
               std::vector<std::complex<double>> poles, double gain)
    : block(name, sys), zeros_(std::move(zeros)), poles_(std::move(poles)), gain_(gain) {
    util::require(poles_.size() >= 1, this->name(), "at least one pole required");
    util::require(zeros_.size() <= poles_.size(), this->name(),
                  "zero-pole function must be proper");
    std::vector<double> num = poly_from_roots(zeros_);
    for (double& c : num) c *= gain_;
    std::vector<double> den = poly_from_roots(poles_);
    realization_ = std::make_unique<ltf_nd>(name + "_nd", sys, in, out, std::move(num),
                                            std::move(den));
}

void ltf_zp::stamp(system&) {
    // The internal ltf_nd registered itself with the system and stamps as an
    // independent block; nothing further to contribute here.
}

void ltf_zp::stamp_init(system&, solver::equation_system&, double) {}

std::complex<double> ltf_zp::ideal_response(double f) const {
    const std::complex<double> s(0.0, 2.0 * std::numbers::pi * f);
    std::complex<double> h = gain_;
    for (const auto& z : zeros_) h *= (s - z);
    for (const auto& p : poles_) h /= (s - p);
    return h;
}

}  // namespace sca::lsf
