#include "lsf/node.hpp"

#include "numeric/sparse.hpp"
#include "util/report.hpp"

namespace sca::lsf {

block::block(std::string name, system& sys) : de::object(std::move(name)), sys_(&sys) {
    sys.register_block(*this);
}

signal system::create_signal(const std::string& name) {
    const std::size_t index = raw_system().add_unknown(name);
    signal_names_.push_back(name);
    return signal(this, index);
}

double system::value(const signal& s) const {
    util::require(s.valid(), name(), "value of an invalid lsf signal");
    if (s.index() >= state().size()) return 0.0;  // before the first step
    return state()[s.index()];
}

std::size_t system::claim_driver(const signal& s, const block& driver) {
    util::require(s.valid(), name(), "block output is not connected to a signal");
    const auto [it, inserted] = drivers_.emplace(s.index(), &driver);
    util::require(inserted || it->second == &driver, name(),
                  "lsf signal '" + signal_names_[s.index()] + "' has two drivers (" +
                      it->second->name() + " and " + driver.name() + ")");
    return s.index();
}

std::size_t system::add_state(const block& b, const std::string& suffix) {
    const auto key = std::make_pair(&b, suffix);
    auto it = states_.find(key);
    if (it != states_.end()) return it->second;
    const std::size_t row = raw_system().add_unknown(b.name() + "." + suffix);
    states_.emplace(key, row);
    return row;
}

void system::build_equations() {
    drivers_.clear();
    for (block* b : blocks_) b->stamp(*this);
    // Every signal must have exactly one driver, or the matrix is singular.
    for (std::size_t i = 0; i < signal_names_.size(); ++i) {
        util::require(drivers_.count(i) == 1, name(),
                      "lsf signal '" + signal_names_[i] + "' has no driver");
    }
}

void system::read_inputs() {
    for (block* b : blocks_) b->read_tdf_inputs(*this);
}

void system::write_outputs() {
    for (block* b : blocks_) b->write_tdf_outputs(*this);
}

std::vector<double> system::initial_state() {
    // Consistent algebraic initialization: a fresh equation system with the
    // same unknowns where dynamic blocks pin their states.
    solver::equation_system init;
    for (std::size_t i = 0; i < raw_system().size(); ++i) {
        init.add_unknown(raw_system().unknown_name(i));
    }
    const double t0 = solve_time();
    for (block* b : blocks_) b->stamp_init(*this, init, t0);
    num::sparse_lu_d lu(init.a());
    return lu.solve(init.rhs(t0));
}

}  // namespace sca::lsf
