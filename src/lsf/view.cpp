#include "lsf/view.hpp"

#include <cmath>
#include <numbers>

#include "lsf/ltf.hpp"
#include "util/report.hpp"

namespace sca::lsf::filters {

std::vector<std::complex<double>> butterworth_poles(std::size_t order, double cutoff_hz) {
    util::require(order >= 1, "butterworth_poles", "order must be >= 1");
    util::require(cutoff_hz > 0.0, "butterworth_poles", "cutoff must be positive");
    const double w0 = 2.0 * std::numbers::pi * cutoff_hz;
    std::vector<std::complex<double>> poles;
    poles.reserve(order);
    for (std::size_t k = 0; k < order; ++k) {
        const double theta = std::numbers::pi *
                             (2.0 * static_cast<double>(k) + 1.0 +
                              static_cast<double>(order)) /
                             (2.0 * static_cast<double>(order));
        poles.emplace_back(w0 * std::cos(theta), w0 * std::sin(theta));
    }
    return poles;
}

tf_coefficients butterworth_lowpass(std::size_t order, double cutoff_hz) {
    const auto poles = butterworth_poles(order, cutoff_hz);
    tf_coefficients tf;
    tf.den = poly_from_roots(poles);
    tf.num = {tf.den[0]};  // unity DC gain
    return tf;
}

tf_coefficients first_order_lowpass(double cutoff_hz) {
    util::require(cutoff_hz > 0.0, "first_order_lowpass", "cutoff must be positive");
    const double w0 = 2.0 * std::numbers::pi * cutoff_hz;
    return {{1.0}, {1.0, 1.0 / w0}};
}

tf_coefficients bandpass_biquad(double center_hz, double q) {
    util::require(center_hz > 0.0 && q > 0.0, "bandpass_biquad",
                  "center frequency and Q must be positive");
    const double w0 = 2.0 * std::numbers::pi * center_hz;
    return {{0.0, w0 / q}, {w0 * w0, w0 / q, 1.0}};
}

tf_coefficients highpass_biquad(double cutoff_hz, double q) {
    util::require(cutoff_hz > 0.0 && q > 0.0, "highpass_biquad",
                  "cutoff frequency and Q must be positive");
    const double w0 = 2.0 * std::numbers::pi * cutoff_hz;
    return {{0.0, 0.0, 1.0}, {w0 * w0, w0 / q, 1.0}};
}

}  // namespace sca::lsf::filters
