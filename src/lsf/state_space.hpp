// State-space block (paper phase 1: "state-space equations"):
//
//     dx/dt = A x + B u,     y = C x + D u
//
// with dense matrices and arbitrary input/output signal vectors (MIMO).
#ifndef SCA_LSF_STATE_SPACE_HPP
#define SCA_LSF_STATE_SPACE_HPP

#include <vector>

#include "numeric/dense.hpp"
#include "lsf/node.hpp"

namespace sca::lsf {

class state_space : public block {
public:
    state_space(const std::string& name, system& sys, std::vector<signal> inputs,
                std::vector<signal> outputs, num::dense_matrix_d a, num::dense_matrix_d b,
                num::dense_matrix_d c, num::dense_matrix_d d);

    void stamp(system& sys) override;
    void stamp_init(system& sys, solver::equation_system& init, double t0) override;

    /// Initial state vector (default 0).
    void set_initial_state(std::vector<double> x0);

    [[nodiscard]] std::size_t order() const noexcept { return a_.rows(); }

private:
    std::vector<signal> inputs_;
    std::vector<signal> outputs_;
    num::dense_matrix_d a_, b_, c_, d_;
    std::vector<double> x0_;
};

}  // namespace sca::lsf

#endif  // SCA_LSF_STATE_SPACE_HPP
