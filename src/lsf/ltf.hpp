// Laplace-domain transfer-function blocks (paper phase 1: "Predefined linear
// operators (Laplace transfer function, zero-pole transfer function, ...)").
//
// ltf_nd realizes H(s) = num(s)/den(s) in controllable canonical form with
// den-degree internal states; ltf_zp converts zeros/poles/gain into
// polynomial form first.  Both support proper (num degree == den degree)
// functions via a direct feed-through term.
#ifndef SCA_LSF_LTF_HPP
#define SCA_LSF_LTF_HPP

#include <complex>
#include <memory>
#include <vector>

#include "lsf/node.hpp"

namespace sca::lsf {

/// H(s) = (num[0] + num[1] s + ...) / (den[0] + den[1] s + ...).
class ltf_nd : public block {
public:
    ltf_nd(const std::string& name, system& sys, signal in, signal out,
           std::vector<double> num, std::vector<double> den);

    void stamp(system& sys) override;
    void stamp_init(system& sys, solver::equation_system& init, double t0) override;

    /// Initial internal state (controllable canonical coordinates; default 0).
    void set_initial_state(std::vector<double> x0);

    [[nodiscard]] std::size_t order() const noexcept { return den_.size() - 1; }

    /// Frequency response of the ideal transfer function (reference for
    /// tests and the frequency-domain benches).
    [[nodiscard]] std::complex<double> ideal_response(double f) const;

private:
    signal in_, out_;
    std::vector<double> num_;
    std::vector<double> den_;
    std::vector<double> x0_;
};

/// H(s) = gain * prod(s - zeros[i]) / prod(s - poles[j]).
/// Complex zeros/poles must appear in conjugate pairs.
class ltf_zp : public block {
public:
    ltf_zp(const std::string& name, system& sys, signal in, signal out,
           std::vector<std::complex<double>> zeros, std::vector<std::complex<double>> poles,
           double gain);

    void stamp(system& sys) override;
    void stamp_init(system& sys, solver::equation_system& init, double t0) override;

    [[nodiscard]] std::complex<double> ideal_response(double f) const;

private:
    std::unique_ptr<ltf_nd> realization_;
    std::vector<std::complex<double>> zeros_, poles_;
    double gain_;
};

/// Expand a monic product prod(s - roots[i]) into real polynomial
/// coefficients (ascending powers). Throws if roots are not closed under
/// conjugation.
[[nodiscard]] std::vector<double> poly_from_roots(
    const std::vector<std::complex<double>>& roots);

/// Evaluate a real polynomial (ascending coefficients) at s.
[[nodiscard]] std::complex<double> poly_eval(const std::vector<double>& coeffs,
                                             std::complex<double> s);

}  // namespace sca::lsf

#endif  // SCA_LSF_LTF_HPP
