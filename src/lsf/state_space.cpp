#include "lsf/state_space.hpp"

#include "util/report.hpp"

namespace sca::lsf {

state_space::state_space(const std::string& name, system& sys, std::vector<signal> inputs,
                         std::vector<signal> outputs, num::dense_matrix_d a,
                         num::dense_matrix_d b, num::dense_matrix_d c,
                         num::dense_matrix_d d)
    : block(name, sys), inputs_(std::move(inputs)), outputs_(std::move(outputs)),
      a_(std::move(a)), b_(std::move(b)), c_(std::move(c)), d_(std::move(d)) {
    const std::size_t n = a_.rows();
    util::require(a_.cols() == n, this->name(), "A must be square");
    util::require(b_.rows() == n && b_.cols() == inputs_.size(), this->name(),
                  "B must be n x inputs");
    util::require(c_.rows() == outputs_.size() && c_.cols() == n, this->name(),
                  "C must be outputs x n");
    util::require(d_.rows() == outputs_.size() && d_.cols() == inputs_.size(), this->name(),
                  "D must be outputs x inputs");
    x0_.assign(n, 0.0);
}

void state_space::set_initial_state(std::vector<double> x0) {
    util::require(x0.size() == order(), name(), "initial state dimension mismatch");
    x0_ = std::move(x0);
}

void state_space::stamp(system& sys) {
    const std::size_t n = order();
    auto& es = sys.sys();

    std::vector<std::size_t> xr(n);
    for (std::size_t i = 0; i < n; ++i) xr[i] = sys.add_state(*this, "x" + std::to_string(i));

    // State rows: dx_i/dt - sum_j A_ij x_j - sum_k B_ik u_k = 0.
    for (std::size_t i = 0; i < n; ++i) {
        es.add_b(xr[i], xr[i], 1.0);
        for (std::size_t j = 0; j < n; ++j) {
            if (a_(i, j) != 0.0) es.add_a(xr[i], xr[j], -a_(i, j));
        }
        for (std::size_t k = 0; k < inputs_.size(); ++k) {
            if (b_(i, k) != 0.0) es.add_a(xr[i], inputs_[k].index(), -b_(i, k));
        }
    }

    // Output rows: y_o - sum_j C_oj x_j - sum_k D_ok u_k = 0.
    for (std::size_t o = 0; o < outputs_.size(); ++o) {
        const std::size_t r = sys.claim_driver(outputs_[o], *this);
        es.add_a(r, outputs_[o].index(), 1.0);
        for (std::size_t j = 0; j < n; ++j) {
            if (c_(o, j) != 0.0) es.add_a(r, xr[j], -c_(o, j));
        }
        for (std::size_t k = 0; k < inputs_.size(); ++k) {
            if (d_(o, k) != 0.0) es.add_a(r, inputs_[k].index(), -d_(o, k));
        }
    }
}

void state_space::stamp_init(system& sys, solver::equation_system& init, double) {
    const std::size_t n = order();
    std::vector<std::size_t> xr(n);
    for (std::size_t i = 0; i < n; ++i) xr[i] = sys.add_state(*this, "x" + std::to_string(i));
    for (std::size_t i = 0; i < n; ++i) {
        init.add_a(xr[i], xr[i], 1.0);
        init.add_rhs_constant(xr[i], x0_[i]);
    }
    for (std::size_t o = 0; o < outputs_.size(); ++o) {
        const std::size_t r = outputs_[o].index();
        init.add_a(r, r, 1.0);
        for (std::size_t j = 0; j < n; ++j) {
            if (c_(o, j) != 0.0) init.add_a(r, xr[j], -c_(o, j));
        }
        for (std::size_t k = 0; k < inputs_.size(); ++k) {
            if (d_(o, k) != 0.0) init.add_a(r, inputs_[k].index(), -d_(o, k));
        }
    }
}

}  // namespace sca::lsf
