// Filter-design helpers for the signal-flow view: standard analog prototypes
// expressed as zero/pole sets, ready for ltf_zp/ltf_nd realization.  Used by
// the codec/DSP examples and the frequency-domain benches.
#ifndef SCA_LSF_VIEW_HPP
#define SCA_LSF_VIEW_HPP

#include <complex>
#include <vector>

namespace sca::lsf::filters {

/// Butterworth lowpass poles for the given order and -3dB cutoff (Hz).
[[nodiscard]] std::vector<std::complex<double>> butterworth_poles(std::size_t order,
                                                                  double cutoff_hz);

/// num/den coefficients (ascending powers of s) of a Butterworth lowpass
/// with unity DC gain.
struct tf_coefficients {
    std::vector<double> num;
    std::vector<double> den;
};
[[nodiscard]] tf_coefficients butterworth_lowpass(std::size_t order, double cutoff_hz);

/// First-order lowpass: H(s) = 1 / (1 + s/w0).
[[nodiscard]] tf_coefficients first_order_lowpass(double cutoff_hz);

/// Second-order bandpass: H(s) = (s w0/Q) / (s^2 + s w0/Q + w0^2),
/// unity gain at the center frequency.
[[nodiscard]] tf_coefficients bandpass_biquad(double center_hz, double q);

/// Second-order highpass: H(s) = s^2 / (s^2 + s w0/Q + w0^2).
[[nodiscard]] tf_coefficients highpass_biquad(double cutoff_hz, double q);

}  // namespace sca::lsf::filters

#endif  // SCA_LSF_VIEW_HPP
