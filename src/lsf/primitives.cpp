#include "lsf/primitives.hpp"

#include <cmath>
#include <complex>
#include <numbers>

namespace sca::lsf {

// -------------------------------------------------------------------- source

source::source(const std::string& name, system& sys, signal out, waveform w)
    : block(name, sys), out_(out), wave_(std::move(w)) {}

void source::stamp(system& sys) {
    const std::size_t r = sys.claim_driver(out_, *this);
    sys.sys().add_a(r, out_.index(), 1.0);
    if (wave_.is_dc()) {
        sys.sys().add_rhs_constant(r, wave_.dc_value());
    } else {
        const waveform w = wave_;
        sys.sys().add_rhs_source(r, [w](double t) { return w.at(t); });
    }
    if (ac_mag_ != 0.0) {
        const double phase = ac_phase_deg_ * std::numbers::pi / 180.0;
        sys.sys().add_ac_source(r, std::polar(ac_mag_, phase));
    }
}

void source::stamp_init(system&, solver::equation_system& init, double t0) {
    init.add_a(out_.index(), out_.index(), 1.0);
    init.add_rhs_constant(out_.index(), wave_.at(t0));
}

// ---------------------------------------------------------------------- gain

gain::gain(const std::string& name, system& sys, signal in, signal out, double k)
    : block(name, sys), in_(in), out_(out), k_(k) {}

void gain::stamp(system& sys) {
    const std::size_t r = sys.claim_driver(out_, *this);
    sys.sys().add_a(r, out_.index(), 1.0);
    slot_ = sys.sys().add_stamp(k_);
    sys.sys().stamp_a(slot_, r, in_.index(), -1.0);
}

void gain::stamp_init(system&, solver::equation_system& init, double) {
    init.add_a(out_.index(), out_.index(), 1.0);
    init.add_a(out_.index(), in_.index(), -k_);
}

void gain::set_k(double k) {
    if (k != k_) {
        k_ = k;
        if (slot_ != solver::no_stamp_handle) {
            sys_->sys().set_stamp(slot_, k_);
            sys_->component_value_update();
        }
    }
}

// ----------------------------------------------------------------------- add

add::add(const std::string& name, system& sys, signal in1, signal in2, signal out,
         double w1, double w2)
    : block(name, sys), in1_(in1), in2_(in2), out_(out), w1_(w1), w2_(w2) {}

void add::stamp(system& sys) {
    const std::size_t r = sys.claim_driver(out_, *this);
    sys.sys().add_a(r, out_.index(), 1.0);
    sys.sys().add_a(r, in1_.index(), -w1_);
    sys.sys().add_a(r, in2_.index(), -w2_);
}

void add::stamp_init(system&, solver::equation_system& init, double) {
    init.add_a(out_.index(), out_.index(), 1.0);
    init.add_a(out_.index(), in1_.index(), -w1_);
    init.add_a(out_.index(), in2_.index(), -w2_);
}

// ----------------------------------------------------------------------- sub

sub::sub(const std::string& name, system& sys, signal in1, signal in2, signal out)
    : block(name, sys), in1_(in1), in2_(in2), out_(out) {}

void sub::stamp(system& sys) {
    const std::size_t r = sys.claim_driver(out_, *this);
    sys.sys().add_a(r, out_.index(), 1.0);
    sys.sys().add_a(r, in1_.index(), -1.0);
    sys.sys().add_a(r, in2_.index(), 1.0);
}

void sub::stamp_init(system&, solver::equation_system& init, double) {
    init.add_a(out_.index(), out_.index(), 1.0);
    init.add_a(out_.index(), in1_.index(), -1.0);
    init.add_a(out_.index(), in2_.index(), 1.0);
}

// --------------------------------------------------------------------- integ

integ::integ(const std::string& name, system& sys, signal in, signal out, double k,
             double y0)
    : block(name, sys), in_(in), out_(out), k_(k), y0_(y0) {}

void integ::stamp(system& sys) {
    const std::size_t r = sys.claim_driver(out_, *this);
    sys.sys().add_b(r, out_.index(), 1.0);
    sys.sys().add_a(r, in_.index(), -k_);
}

void integ::stamp_init(system&, solver::equation_system& init, double) {
    init.add_a(out_.index(), out_.index(), 1.0);
    init.add_rhs_constant(out_.index(), y0_);
}

// ----------------------------------------------------------------------- dot

dot::dot(const std::string& name, system& sys, signal in, signal out, double k)
    : block(name, sys), in_(in), out_(out), k_(k) {}

void dot::stamp(system& sys) {
    const std::size_t r = sys.claim_driver(out_, *this);
    sys.sys().add_a(r, out_.index(), 1.0);
    sys.sys().add_b(r, in_.index(), -k_);
}

void dot::stamp_init(system&, solver::equation_system& init, double) {
    // The derivative at t=0 is undefined without history; start at zero.
    init.add_a(out_.index(), out_.index(), 1.0);
}

// ------------------------------------------------------------------ from_tdf

from_tdf::from_tdf(const std::string& name, system& sys, signal out)
    : block(name, sys), inp("inp"), out_(out) {
    inp.set_owner(sys);
}

void from_tdf::stamp(system& sys) {
    const std::size_t r = sys.claim_driver(out_, *this);
    sys.sys().add_a(r, out_.index(), 1.0);
    slot_ = sys.sys().add_input(r);
}

void from_tdf::stamp_init(system&, solver::equation_system& init, double) {
    init.add_a(out_.index(), out_.index(), 1.0);
    init.add_rhs_constant(out_.index(), last_sample_);
}

void from_tdf::read_tdf_inputs(system& sys) {
    last_sample_ = inp.read();
    sys.sys().set_input(slot_, last_sample_);
}

// -------------------------------------------------------------------- to_tdf

to_tdf::to_tdf(const std::string& name, system& sys, signal in)
    : block(name, sys), outp("outp"), in_(in) {
    outp.set_owner(sys);
}

void to_tdf::write_tdf_outputs(system& sys) { outp.write(sys.value(in_)); }

// ------------------------------------------------------------------- from_de

from_de::from_de(const std::string& name, system& sys, signal out)
    : block(name, sys), inp("inp"), out_(out) {
    sys.declare_de_coupled();
}

void from_de::stamp(system& sys) {
    const std::size_t r = sys.claim_driver(out_, *this);
    sys.sys().add_a(r, out_.index(), 1.0);
    slot_ = sys.sys().add_input(r);
}

void from_de::stamp_init(system&, solver::equation_system& init, double) {
    init.add_a(out_.index(), out_.index(), 1.0);
    init.add_rhs_constant(out_.index(), last_sample_);
}

void from_de::read_tdf_inputs(system& sys) {
    last_sample_ = inp.read();
    sys.sys().set_input(slot_, last_sample_);
}

// --------------------------------------------------------------------- to_de

to_de::to_de(const std::string& name, system& sys, signal in)
    : block(name, sys), outp("outp"), in_(in) {
    sys.declare_de_coupled();
}

void to_de::write_tdf_outputs(system& sys) { outp.write(sys.value(in_)); }

}  // namespace sca::lsf
