// Linear signal-flow (LSF) view (paper §3: "signal-flow modeling is the best
// candidate to be supported by SystemC-AMS ... The underlying principle of
// signal-flow modeling is a directed graph. Each edge represents a quantity
// and each vertex represents a relation").
//
// An lsf::system is a TDF module embedding a linear DAE; every lsf::signal
// is one unknown, and every block contributes the defining equation of its
// output signal (plus internal state equations for dynamic blocks).
#ifndef SCA_LSF_NODE_HPP
#define SCA_LSF_NODE_HPP

#include <map>
#include <string>
#include <vector>

#include "tdf/dae_module.hpp"

namespace sca::lsf {

class system;

/// Value handle to a signal-flow quantity (an edge of the flow graph).
class signal {
public:
    signal() = default;

    [[nodiscard]] bool valid() const noexcept { return sys_ != nullptr; }
    [[nodiscard]] std::size_t index() const noexcept { return index_; }
    [[nodiscard]] system* sys() const noexcept { return sys_; }

private:
    friend class system;
    signal(system* sys, std::size_t index) : sys_(sys), index_(index) {}

    system* sys_ = nullptr;
    std::size_t index_ = 0;
};

/// Base class of signal-flow blocks (the vertices of the flow graph).
class block : public de::object {
public:
    [[nodiscard]] const char* kind() const noexcept override { return "lsf_block"; }

    /// Stamp the dynamic equations (A, B, rhs).
    virtual void stamp(system& sys) = 0;

    /// Stamp the t=0 consistent-initialization equations into `init`.
    /// Algebraic blocks restate their relation; dynamic blocks pin their
    /// states to the configured initial values (paper §3: the formal
    /// definition of "a consistent initial (quiescent) state").
    virtual void stamp_init(system& sys, solver::equation_system& init, double t0) = 0;

    /// TDF exchange hooks (converter blocks).
    virtual void read_tdf_inputs(system&) {}
    virtual void write_tdf_outputs(system&) {}

protected:
    block(std::string name, system& sys);

    system* sys_;
};

class system : public tdf::dae_module {
public:
    explicit system(const de::module_name& nm) : tdf::dae_module(nm) {}

    [[nodiscard]] const char* kind() const noexcept override { return "lsf_system"; }

    /// Create a named flow quantity.
    [[nodiscard]] signal create_signal(const std::string& name);

    void register_block(block& b) { blocks_.push_back(&b); }

    /// Current value of a signal (valid once simulation started).
    [[nodiscard]] double value(const signal& s) const;

    // --- stamping services (used by blocks) -----------------------------------
    /// Claim the defining equation of `s`; errors on double drivers.
    /// Returns the equation row (== the signal's unknown index).
    std::size_t claim_driver(const signal& s, const block& driver);

    /// Extra internal unknown (e.g. a transfer-function state).
    std::size_t add_state(const block& b, const std::string& suffix);

    solver::equation_system& sys() { return raw_system(); }

    /// Block-visible full-restamp request (pattern-level changes).
    void component_restamp_request() { request_restamp(); }
    /// Block-visible values-only refresh (after sys().set_stamp on a slot).
    void component_value_update() { request_value_update(); }

    [[nodiscard]] const std::vector<block*>& blocks() const noexcept { return blocks_; }

protected:
    void build_equations() override;
    void read_inputs() override;
    void write_outputs() override;
    std::vector<double> initial_state() override;

private:
    std::vector<std::string> signal_names_;
    std::vector<block*> blocks_;
    std::map<std::size_t, const block*> drivers_;
    std::map<std::pair<const block*, std::string>, std::size_t> states_;
};

}  // namespace sca::lsf

#endif  // SCA_LSF_NODE_HPP
