// Elementary signal-flow blocks (paper phase 1: gains, sums, integrators,
// differentiators, sources) and the TDF/DE converter blocks.
#ifndef SCA_LSF_PRIMITIVES_HPP
#define SCA_LSF_PRIMITIVES_HPP

#include "kernel/signal.hpp"
#include "lsf/node.hpp"
#include "tdf/port.hpp"
#include "util/waveform.hpp"

namespace sca::lsf {

using waveform = util::waveform;

/// Autonomous source: out = w(t).
class source : public block {
public:
    source(const std::string& name, system& sys, signal out, waveform w);
    void stamp(system& sys) override;
    void stamp_init(system& sys, solver::equation_system& init, double t0) override;

    /// Small-signal stimulus magnitude for AC analysis (default off).
    void set_ac(double magnitude, double phase_deg = 0.0) {
        ac_mag_ = magnitude;
        ac_phase_deg_ = phase_deg;
    }

private:
    signal out_;
    waveform wave_;
    double ac_mag_ = 0.0;
    double ac_phase_deg_ = 0.0;
};

/// out = k * in.
class gain : public block {
public:
    gain(const std::string& name, system& sys, signal in, signal out, double k);
    void stamp(system& sys) override;
    void stamp_init(system& sys, solver::equation_system& init, double t0) override;

    /// Change the gain; rewrites the stamp slot in place (values-only: the
    /// solver refactors numerically, no restamp or symbolic pass).
    void set_k(double k);

private:
    signal in_, out_;
    double k_;
    solver::stamp_handle slot_ = solver::no_stamp_handle;
};

/// out = w1 * in1 + w2 * in2 (weights default to 1).
class add : public block {
public:
    add(const std::string& name, system& sys, signal in1, signal in2, signal out,
        double w1 = 1.0, double w2 = 1.0);
    void stamp(system& sys) override;
    void stamp_init(system& sys, solver::equation_system& init, double t0) override;

private:
    signal in1_, in2_, out_;
    double w1_, w2_;
};

/// out = in1 - in2.
class sub : public block {
public:
    sub(const std::string& name, system& sys, signal in1, signal in2, signal out);
    void stamp(system& sys) override;
    void stamp_init(system& sys, solver::equation_system& init, double t0) override;

private:
    signal in1_, in2_, out_;
};

/// d(out)/dt = k * in, out(0) = y0.
class integ : public block {
public:
    integ(const std::string& name, system& sys, signal in, signal out, double k = 1.0,
          double y0 = 0.0);
    void stamp(system& sys) override;
    void stamp_init(system& sys, solver::equation_system& init, double t0) override;

private:
    signal in_, out_;
    double k_;
    double y0_;
};

/// out = k * d(in)/dt (initialized to 0 at t=0).
class dot : public block {
public:
    dot(const std::string& name, system& sys, signal in, signal out, double k = 1.0);
    void stamp(system& sys) override;
    void stamp_init(system& sys, solver::equation_system& init, double t0) override;

private:
    signal in_, out_;
    double k_;
};

/// TDF -> LSF converter: out follows the TDF input sample.
class from_tdf : public block {
public:
    from_tdf(const std::string& name, system& sys, signal out);

    tdf::in<double> inp;

    void stamp(system& sys) override;
    void stamp_init(system& sys, solver::equation_system& init, double t0) override;
    void read_tdf_inputs(system& sys) override;

private:
    signal out_;
    std::size_t slot_ = 0;
    double last_sample_ = 0.0;
};

/// LSF -> TDF converter: writes the signal value each step.
class to_tdf : public block {
public:
    to_tdf(const std::string& name, system& sys, signal in);

    tdf::out<double> outp;

    void stamp(system&) override {}
    void stamp_init(system&, solver::equation_system&, double) override {}
    void write_tdf_outputs(system& sys) override;

private:
    signal in_;
};

/// DE -> LSF converter: samples a DE signal at each activation.
class from_de : public block {
public:
    from_de(const std::string& name, system& sys, signal out);

    de::in<double> inp;

    void stamp(system& sys) override;
    void stamp_init(system& sys, solver::equation_system& init, double t0) override;
    void read_tdf_inputs(system& sys) override;

private:
    signal out_;
    std::size_t slot_ = 0;
    double last_sample_ = 0.0;
};

/// LSF -> DE converter: writes the signal value to a DE signal each step.
class to_de : public block {
public:
    to_de(const std::string& name, system& sys, signal in);

    de::out<double> outp;

    void stamp(system&) override {}
    void stamp_init(system&, solver::equation_system&, double) override {}
    void write_tdf_outputs(system& sys) override;

private:
    signal in_;
};

}  // namespace sca::lsf

#endif  // SCA_LSF_PRIMITIVES_HPP
