#include "core/simulation.hpp"

namespace sca::core {

simulation::simulation() : ctx_(std::make_unique<de::simulation_context>()) {}

simulation::~simulation() = default;

void simulation::trace(util::trace_file& file, const de::time& period) {
    util::require(period > de::time::zero(), "simulation::trace",
                  "trace period must be positive");
    // A plain method process: sample, then re-arm.
    auto& proc = ctx_->register_method("trace_recorder", [this, &file, period] {
        file.sample(ctx_->now().to_seconds());
        ctx_->next_trigger(period);
    });
    (void)proc;
}

std::function<double()> probe(const de::signal<double>& s) {
    return [&s] { return s.read(); };
}

std::function<double()> probe(const de::signal<bool>& s) {
    return [&s] { return s.read() ? 1.0 : 0.0; };
}

std::function<double()> probe(const tdf::signal<double>& s) {
    return [&s] { return s.last_value(); };
}

}  // namespace sca::core
