#include "core/ac_analysis.hpp"

#include "core/scenario.hpp"
#include "util/report.hpp"

namespace sca::core {

std::vector<ac_point> tdf_cascade_response(const std::vector<const tdf::module*>& chain,
                                           const solver::sweep& sw) {
    util::require(!chain.empty(), "tdf_cascade_response", "empty module chain");
    for (const auto* m : chain) {
        util::require(m != nullptr, "tdf_cascade_response", "null module in chain");
        util::require(m->has_ac_model(), m->name(),
                      "module has no frequency-domain model (override ac_response)");
    }
    std::vector<ac_point> points;
    for (double f : sw.frequencies()) {
        std::complex<double> h{1.0, 0.0};
        for (const auto* m : chain) h *= m->ac_response(f);
        points.push_back({f, h});
    }
    return points;
}

ac_analysis::ac_analysis(tdf::dae_module& view) : view_(&view) { view.build_now(); }

ac_analysis::ac_analysis(tdf::dae_module& view, std::vector<double> dc_operating_point)
    : view_(&view), dc_(std::move(dc_operating_point)), have_dc_(true) {
    view.build_now();
}

ac_analysis::ac_analysis(testbench& tb) : ac_analysis(tb.view()) {}

ac_analysis::ac_analysis(testbench& tb, const std::string& view_name)
    : ac_analysis(tb.view(view_name)) {}

std::vector<ac_point> ac_analysis::sweep(std::size_t output,
                                         const solver::sweep& sw) const {
    const sca::solver::ac_solver ac =
        have_dc_ ? sca::solver::ac_solver(view_->equations(), dc_)
                 : sca::solver::ac_solver(view_->equations());
    std::vector<ac_point> points;
    for (double f : sw.frequencies()) {
        points.push_back({f, ac.solve(f)[output]});
    }
    return points;
}

void ac_analysis::write(const std::vector<ac_point>& points, util::trace_file& file) {
    // The trace interface is time-major; frequency plays the role of the
    // abscissa here.
    static thread_local const ac_point* current = nullptr;
    file.add_channel("magnitude_db", [] { return current->magnitude_db(); });
    file.add_channel("phase_deg", [] { return current->phase_deg(); });
    for (const auto& p : points) {
        current = &p;
        file.sample(p.frequency);
    }
    current = nullptr;
}

}  // namespace sca::core
