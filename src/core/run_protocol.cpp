#include "core/run_protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <string>
#include <variant>

#include "util/report.hpp"

namespace sca::core::wire {

std::uint32_t fnv1a(const std::uint8_t* data, std::size_t n) noexcept {
    std::uint32_t h = 0x811c9dc5U;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x01000193U;
    }
    return h;
}

namespace {

// ------------------------------------------------------------- byte writer --

struct writer {
    std::vector<std::uint8_t> buf;

    void put_u8(std::uint8_t v) { buf.push_back(v); }
    void put_u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void put_u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void put_double(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }
    void put_string(const std::string& s) {
        put_u32(static_cast<std::uint32_t>(s.size()));
        buf.insert(buf.end(), s.begin(), s.end());
    }
    void put_doubles(const std::vector<double>& v) {
        put_u64(v.size());
        for (double d : v) put_double(d);
    }
};

// ------------------------------------------------------------- byte reader --

struct reader {
    const std::uint8_t* data;
    std::size_t size;
    std::size_t pos = 0;

    void need(std::size_t n) const {
        util::require(size - pos >= n, "run_protocol",
                      "truncated message: need " + std::to_string(n) + " bytes at offset " +
                          std::to_string(pos) + ", have " + std::to_string(size - pos));
    }
    std::uint8_t get_u8() {
        need(1);
        return data[pos++];
    }
    std::uint32_t get_u32() {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
        return v;
    }
    std::uint64_t get_u64() {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data[pos++]) << (8 * i);
        return v;
    }
    double get_double() { return std::bit_cast<double>(get_u64()); }
    std::string get_string() {
        const std::uint32_t n = get_u32();
        need(n);
        std::string s(reinterpret_cast<const char*>(data + pos), n);
        pos += n;
        return s;
    }
    std::vector<double> get_doubles() {
        const std::uint64_t n = get_u64();
        // Bound the count against the actual payload size before allocating
        // (and before n * 8 could wrap for a hostile length prefix).
        util::require(n <= (size - pos) / 8, "run_protocol",
                      "truncated message: double array count " + std::to_string(n) +
                          " exceeds the remaining payload");
        std::vector<double> v(n);
        for (std::uint64_t i = 0; i < n; ++i) v[i] = get_double();
        return v;
    }
    void expect_done() const {
        util::require(pos == size, "run_protocol",
                      "oversized message: " + std::to_string(size - pos) +
                          " trailing bytes after a complete payload");
    }
};

void put_params(writer& w, const params& p) {
    const auto& entries = p.entries();
    w.put_u64(p.run_index());
    w.put_u64(p.seed());
    w.put_u32(static_cast<std::uint32_t>(entries.size()));
    for (const auto& [name, v] : entries) {
        w.put_string(name);
        if (std::holds_alternative<double>(v)) {
            w.put_u8(0);
            w.put_double(std::get<double>(v));
        } else {
            w.put_u8(1);
            w.put_string(std::get<std::string>(v));
        }
    }
}

params get_params(reader& r) {
    params p;
    const std::uint64_t run_index = r.get_u64();
    const std::uint64_t seed = r.get_u64();
    p.set_run_identity(run_index, seed);
    const std::uint32_t n = r.get_u32();
    for (std::uint32_t i = 0; i < n; ++i) {
        std::string name = r.get_string();
        const std::uint8_t kind = r.get_u8();
        util::require(kind <= 1, "run_protocol", "unknown params value kind");
        if (kind == 0) {
            p.set(name, r.get_double());
        } else {
            p.set(name, r.get_string());
        }
    }
    return p;
}

}  // namespace

// ----------------------------------------------------------- job messages --

std::vector<std::uint8_t> encode_job(std::uint64_t index) {
    writer w;
    w.put_u64(index);
    return std::move(w.buf);
}

std::uint64_t decode_job(const std::uint8_t* data, std::size_t n) {
    reader r{data, n};
    const std::uint64_t index = r.get_u64();
    r.expect_done();
    return index;
}

// -------------------------------------------------------- result messages --

std::vector<std::uint8_t> encode_result(const run_result& res) {
    writer w;
    w.put_u64(res.index);
    w.put_u64(res.seed);
    w.put_u8(res.ok ? 1 : 0);
    w.put_string(res.error);
    put_params(w, res.parameters);
    w.put_u32(static_cast<std::uint32_t>(res.measurements.size()));
    for (const auto& [name, v] : res.measurements) {
        w.put_string(name);
        w.put_double(v);
    }
    w.put_doubles(res.times);
    w.put_u32(static_cast<std::uint32_t>(res.probe_names.size()));
    for (const auto& name : res.probe_names) w.put_string(name);
    w.put_u32(static_cast<std::uint32_t>(res.waveforms.size()));
    for (const auto& wf : res.waveforms) w.put_doubles(wf);
    return std::move(w.buf);
}

run_result decode_result(const std::uint8_t* data, std::size_t n) {
    reader r{data, n};
    run_result res;
    res.index = r.get_u64();
    res.seed = r.get_u64();
    res.ok = r.get_u8() != 0;
    res.error = r.get_string();
    res.parameters = get_params(r);
    const std::uint32_t n_meas = r.get_u32();
    for (std::uint32_t i = 0; i < n_meas; ++i) {
        std::string name = r.get_string();
        res.measurements[name] = r.get_double();
    }
    res.times = r.get_doubles();
    const std::uint32_t n_probes = r.get_u32();
    res.probe_names.reserve(n_probes);
    for (std::uint32_t i = 0; i < n_probes; ++i) res.probe_names.push_back(r.get_string());
    const std::uint32_t n_waves = r.get_u32();
    res.waveforms.reserve(n_waves);
    for (std::uint32_t i = 0; i < n_waves; ++i) res.waveforms.push_back(r.get_doubles());
    r.expect_done();
    return res;
}

std::vector<std::uint8_t> encode_params(const params& p) {
    writer w;
    put_params(w, p);
    return std::move(w.buf);
}

params decode_params(const std::uint8_t* data, std::size_t n) {
    reader r{data, n};
    params p = get_params(r);
    r.expect_done();
    return p;
}

// ------------------------------------------------------- session messages --

std::vector<std::uint8_t> encode_hello(std::uint8_t version) {
    writer w;
    w.put_u8(version);
    return std::move(w.buf);
}

std::uint8_t decode_hello(const std::uint8_t* data, std::size_t n) {
    reader r{data, n};
    const std::uint8_t version = r.get_u8();
    // Versions start at 1; a future version still decodes (the reply tells
    // the peer what this side actually speaks — negotiation, not rejection).
    util::require(version >= 1, "run_protocol", "invalid session protocol version 0");
    r.expect_done();
    return version;
}

std::vector<std::uint8_t> encode_catalog(const std::vector<catalog_entry>& entries) {
    writer w;
    w.put_u32(static_cast<std::uint32_t>(entries.size()));
    for (const catalog_entry& e : entries) {
        w.put_string(e.name);
        put_params(w, e.defaults);
    }
    return std::move(w.buf);
}

std::vector<catalog_entry> decode_catalog(const std::uint8_t* data, std::size_t n) {
    reader r{data, n};
    const std::uint32_t count = r.get_u32();
    std::vector<catalog_entry> entries;
    entries.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        catalog_entry e;
        e.name = r.get_string();
        e.defaults = get_params(r);
        entries.push_back(std::move(e));
    }
    r.expect_done();
    return entries;
}

std::vector<std::uint8_t> encode_open(const open_request& req) {
    writer w;
    w.put_string(req.scenario);
    put_params(w, req.overrides);
    w.put_u64(req.slice_us);
    return std::move(w.buf);
}

open_request decode_open(const std::uint8_t* data, std::size_t n) {
    reader r{data, n};
    open_request req;
    req.scenario = r.get_string();
    req.overrides = get_params(r);
    req.slice_us = r.get_u64();
    r.expect_done();
    return req;
}

std::vector<std::uint8_t> encode_opened(const session_info& info) {
    writer w;
    w.put_u64(info.session_id);
    w.put_double(info.stop_time_s);
    w.put_double(info.sample_period_s);
    w.put_u32(static_cast<std::uint32_t>(info.probes.size()));
    for (const std::string& p : info.probes) w.put_string(p);
    return std::move(w.buf);
}

session_info decode_opened(const std::uint8_t* data, std::size_t n) {
    reader r{data, n};
    session_info info;
    info.session_id = r.get_u64();
    info.stop_time_s = r.get_double();
    info.sample_period_s = r.get_double();
    const std::uint32_t count = r.get_u32();
    info.probes.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) info.probes.push_back(r.get_string());
    r.expect_done();
    return info;
}

std::vector<std::uint8_t> encode_poke(const param_poke& poke) {
    writer w;
    w.put_string(poke.name);
    w.put_double(poke.value);
    return std::move(w.buf);
}

param_poke decode_poke(const std::uint8_t* data, std::size_t n) {
    reader r{data, n};
    param_poke poke;
    poke.name = r.get_string();
    poke.value = r.get_double();
    r.expect_done();
    return poke;
}

std::vector<std::uint8_t> encode_subscribe(const subscribe_request& req) {
    writer w;
    w.put_string(req.probe);
    w.put_u8(req.on ? 1 : 0);
    return std::move(w.buf);
}

subscribe_request decode_subscribe(const std::uint8_t* data, std::size_t n) {
    reader r{data, n};
    subscribe_request req;
    req.probe = r.get_string();
    req.on = r.get_u8() != 0;
    r.expect_done();
    return req;
}

std::vector<std::uint8_t> encode_samples(const sample_batch& batch) {
    writer w;
    w.put_string(batch.probe);
    w.put_u64(batch.first_index);
    w.put_u64(batch.dropped);
    w.put_doubles(batch.times);
    w.put_doubles(batch.values);
    return std::move(w.buf);
}

sample_batch decode_samples(const std::uint8_t* data, std::size_t n) {
    reader r{data, n};
    sample_batch batch;
    batch.probe = r.get_string();
    batch.first_index = r.get_u64();
    batch.dropped = r.get_u64();
    batch.times = r.get_doubles();
    batch.values = r.get_doubles();
    util::require(batch.times.size() == batch.values.size(), "run_protocol",
                  "sample batch times/values length mismatch");
    r.expect_done();
    return batch;
}

std::vector<std::uint8_t> encode_pace(const pace_info& info) {
    writer w;
    w.put_double(info.real_time_factor);
    w.put_double(info.drift_s);
    w.put_double(info.max_drift_s);
    return std::move(w.buf);
}

pace_info decode_pace(const std::uint8_t* data, std::size_t n) {
    reader r{data, n};
    pace_info info;
    info.real_time_factor = r.get_double();
    info.drift_s = r.get_double();
    info.max_drift_s = r.get_double();
    r.expect_done();
    return info;
}

std::vector<std::uint8_t> encode_run_state(bool running) {
    writer w;
    w.put_u8(running ? 1 : 0);
    return std::move(w.buf);
}

bool decode_run_state(const std::uint8_t* data, std::size_t n) {
    reader r{data, n};
    const std::uint8_t v = r.get_u8();
    util::require(v <= 1, "run_protocol", "unknown run_state value");
    r.expect_done();
    return v != 0;
}

std::vector<std::uint8_t> encode_close(const close_info& info) {
    writer w;
    w.put_u8(static_cast<std::uint8_t>(info.reason));
    w.put_double(info.sim_time_s);
    w.put_u64(info.samples_streamed);
    w.put_u64(info.samples_dropped);
    w.put_double(info.pace_drift_s);
    w.put_double(info.pace_max_drift_s);
    w.put_u64(info.max_queue_depth);
    w.put_u64(info.slices);
    w.put_u32(static_cast<std::uint32_t>(info.measurements.size()));
    for (const auto& [name, v] : info.measurements) {
        w.put_string(name);
        w.put_double(v);
    }
    return std::move(w.buf);
}

close_info decode_close(const std::uint8_t* data, std::size_t n) {
    reader r{data, n};
    close_info info;
    const std::uint8_t reason = r.get_u8();
    util::require(reason <= static_cast<std::uint8_t>(close_reason::failed),
                  "run_protocol", "unknown close reason");
    info.reason = static_cast<close_reason>(reason);
    info.sim_time_s = r.get_double();
    info.samples_streamed = r.get_u64();
    info.samples_dropped = r.get_u64();
    info.pace_drift_s = r.get_double();
    info.pace_max_drift_s = r.get_double();
    info.max_queue_depth = r.get_u64();
    info.slices = r.get_u64();
    const std::uint32_t count = r.get_u32();
    for (std::uint32_t i = 0; i < count; ++i) {
        std::string name = r.get_string();
        info.measurements[name] = r.get_double();
    }
    r.expect_done();
    return info;
}

std::vector<std::uint8_t> encode_error(const std::string& message) {
    writer w;
    w.put_string(message);
    return std::move(w.buf);
}

std::string decode_error(const std::uint8_t* data, std::size_t n) {
    reader r{data, n};
    std::string message = r.get_string();
    r.expect_done();
    return message;
}

std::vector<std::uint8_t> encode_stats(const stats_info& info) {
    writer w;
    w.put_double(info.sim_time_s);
    w.put_u64(info.slices);
    w.put_u64(info.samples_streamed);
    w.put_u64(info.samples_dropped);
    w.put_u64(info.queue_depth);
    w.put_u64(info.max_queue_depth);
    w.put_double(info.pace_drift_s);
    w.put_double(info.pace_max_drift_s);
    return std::move(w.buf);
}

stats_info decode_stats(const std::uint8_t* data, std::size_t n) {
    reader r{data, n};
    stats_info info;
    info.sim_time_s = r.get_double();
    info.slices = r.get_u64();
    info.samples_streamed = r.get_u64();
    info.samples_dropped = r.get_u64();
    info.queue_depth = r.get_u64();
    info.max_queue_depth = r.get_u64();
    info.pace_drift_s = r.get_double();
    info.pace_max_drift_s = r.get_double();
    r.expect_done();
    return info;
}

std::vector<std::uint8_t> encode_metrics(const run_metrics& m) {
    writer w;
    w.put_u64(m.index);
    w.put_u32(static_cast<std::uint32_t>(m.entries.size()));
    for (const util::metric_value& mv : m.entries) {
        w.put_string(mv.name);
        w.put_u8(static_cast<std::uint8_t>(mv.kind));
        w.put_u64(mv.count);
        w.put_double(mv.value);
        w.put_double(mv.min);
        w.put_double(mv.max);
    }
    return std::move(w.buf);
}

run_metrics decode_metrics(const std::uint8_t* data, std::size_t n) {
    reader r{data, n};
    run_metrics m;
    m.index = r.get_u64();
    const std::uint32_t count = r.get_u32();
    m.entries.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        util::metric_value mv;
        mv.name = r.get_string();
        const std::uint8_t kind = r.get_u8();
        util::require(kind <= static_cast<std::uint8_t>(
                                  util::metric_value::metric_kind::histogram),
                      "run_protocol", "unknown metric kind");
        mv.kind = static_cast<util::metric_value::metric_kind>(kind);
        mv.count = r.get_u64();
        mv.value = r.get_double();
        mv.min = r.get_double();
        mv.max = r.get_double();
        m.entries.push_back(std::move(mv));
    }
    r.expect_done();
    return m;
}

// ----------------------------------------------------------------- frames --

std::vector<std::uint8_t> pack_frame(msg_type type,
                                     const std::vector<std::uint8_t>& payload) {
    util::require(payload.size() <= k_max_payload, "run_protocol",
                  "frame payload exceeds the " + std::to_string(k_max_payload) +
                      "-byte protocol limit");
    writer w;
    w.buf.reserve(payload.size() + 13);
    w.put_u32(k_magic);
    w.put_u32(static_cast<std::uint32_t>(payload.size()));
    w.put_u8(static_cast<std::uint8_t>(type));
    w.buf.insert(w.buf.end(), payload.begin(), payload.end());
    w.put_u32(fnv1a(payload.data(), payload.size()));
    return std::move(w.buf);
}

namespace {

/// Shared frame-type validation: types 1..k_max_msg_type are assigned (the
/// run_set originals plus the session protocol), everything else is rejected.
bool known_type(std::uint8_t t) noexcept {
    return t >= static_cast<std::uint8_t>(msg_type::job) && t <= k_max_msg_type;
}

}  // namespace

bool unpack_frame(const std::uint8_t* data, std::size_t size, std::size_t& offset,
                  frame& out) {
    if (offset == size) return false;
    reader r{data, size, offset};
    const std::uint32_t magic = r.get_u32();
    util::require(magic == k_magic, "run_protocol", "bad frame magic");
    const std::uint32_t len = r.get_u32();
    util::require(len <= k_max_payload, "run_protocol",
                  "frame payload length " + std::to_string(len) +
                      " exceeds the protocol limit");
    const std::uint8_t type_byte = r.get_u8();
    util::require(known_type(type_byte), "run_protocol", "unknown frame type");
    const auto type = static_cast<msg_type>(type_byte);
    r.need(len);
    out.type = type;
    out.payload.assign(r.data + r.pos, r.data + r.pos + len);
    r.pos += len;
    const std::uint32_t sum = r.get_u32();
    util::require(sum == fnv1a(out.payload.data(), out.payload.size()), "run_protocol",
                  "frame checksum mismatch");
    offset = r.pos;
    return true;
}

std::size_t frame_size_hint(const std::uint8_t* data, std::size_t size) {
    if (size < 9) return 0;  // header incomplete: read more
    std::uint32_t magic = 0, len = 0;
    for (int i = 0; i < 4; ++i) magic |= static_cast<std::uint32_t>(data[i]) << (8 * i);
    for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(data[4 + i]) << (8 * i);
    util::require(magic == k_magic, "run_protocol", "bad frame magic");
    util::require(len <= k_max_payload, "run_protocol",
                  "frame payload length " + std::to_string(len) +
                      " exceeds the protocol limit");
    return 13 + static_cast<std::size_t>(len);  // header + payload + checksum
}

namespace {

/// send() with MSG_NOSIGNAL where the fd is a socket, plain write() where it
/// is not (journal files): writing to a dead peer must return EPIPE instead
/// of raising SIGPIPE.
ssize_t write_some(int fd, const std::uint8_t* data, std::size_t n) {
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) w = ::write(fd, data, n);
    return w;
}

}  // namespace

bool write_frame(int fd, msg_type type, const std::vector<std::uint8_t>& payload) {
    const std::vector<std::uint8_t> bytes = pack_frame(type, payload);
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t w = write_some(fd, bytes.data() + off, bytes.size() - off);
        if (w < 0) {
            if (errno == EINTR) continue;
            if (errno == EPIPE || errno == ECONNRESET) return false;
            util::report_fatal("run_protocol",
                               std::string("frame write failed: ") + std::strerror(errno));
        }
        off += static_cast<std::size_t>(w);
    }
    return true;
}

namespace {

/// Read exactly `n` bytes from a blocking fd.  Returns 0 on immediate EOF,
/// n on success; throws on EOF mid-read or I/O error.
std::size_t read_exact(int fd, std::uint8_t* data, std::size_t n, bool eof_ok) {
    std::size_t off = 0;
    while (off < n) {
        const ssize_t r = ::read(fd, data + off, n - off);
        if (r < 0) {
            if (errno == EINTR) continue;
            util::report_fatal("run_protocol",
                               std::string("frame read failed: ") + std::strerror(errno));
        }
        if (r == 0) {
            if (off == 0 && eof_ok) return 0;
            util::report_fatal("run_protocol", "truncated frame: EOF mid-message");
        }
        off += static_cast<std::size_t>(r);
    }
    return n;
}

}  // namespace

bool read_frame(int fd, frame& out) {
    std::uint8_t header[9];
    if (read_exact(fd, header, sizeof header, /*eof_ok=*/true) == 0) return false;
    std::uint32_t magic = 0, len = 0;
    for (int i = 0; i < 4; ++i) magic |= static_cast<std::uint32_t>(header[i]) << (8 * i);
    for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[4 + i]) << (8 * i);
    util::require(magic == k_magic, "run_protocol", "bad frame magic on stream");
    util::require(len <= k_max_payload, "run_protocol",
                  "frame payload length " + std::to_string(len) +
                      " exceeds the protocol limit");
    util::require(known_type(header[8]), "run_protocol", "unknown frame type on stream");
    const auto type = static_cast<msg_type>(header[8]);
    out.type = type;
    out.payload.resize(len);
    if (len > 0) read_exact(fd, out.payload.data(), len, /*eof_ok=*/false);
    std::uint8_t sum_bytes[4];
    read_exact(fd, sum_bytes, sizeof sum_bytes, /*eof_ok=*/false);
    std::uint32_t sum = 0;
    for (int i = 0; i < 4; ++i) sum |= static_cast<std::uint32_t>(sum_bytes[i]) << (8 * i);
    util::require(sum == fnv1a(out.payload.data(), out.payload.size()), "run_protocol",
                  "frame checksum mismatch on stream");
    return true;
}

}  // namespace sca::core::wire
