// DC (quiescent operating point) analysis driver (paper §3: "Static analyses
// include the computation of the DC operating point, or quiescent state").
// Produces a named report over any continuous-time view's unknowns.
#ifndef SCA_CORE_DC_ANALYSIS_HPP
#define SCA_CORE_DC_ANALYSIS_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "solver/dc.hpp"
#include "tdf/dae_module.hpp"

namespace sca::core {

class testbench;

class dc_analysis {
public:
    /// Assembles the view's equations on construction.
    explicit dc_analysis(tdf::dae_module& view);

    /// Analyse the testbench's continuous-time view (elaborating first), so
    /// one scenario-built model serves DC, AC, noise, and transient runs.
    explicit dc_analysis(testbench& tb);
    dc_analysis(testbench& tb, const std::string& view_name);

    struct entry {
        std::string name;  // unknown name, e.g. "v(out)" or "i(vs.i)"
        double value;
    };

    /// Solve the quiescent state at time `t0` (sources evaluated there).
    [[nodiscard]] std::vector<entry> operating_point(double t0 = 0.0) const;

    /// Value of one unknown from a fresh DC solve.
    [[nodiscard]] double value(std::size_t unknown, double t0 = 0.0) const;

    /// Human-readable operating-point table.
    static void write(const std::vector<entry>& op, std::ostream& os);

    void set_options(const solver::dc_options& opt) { options_ = opt; }

private:
    tdf::dae_module* view_;
    solver::dc_options options_;
};

}  // namespace sca::core

#endif  // SCA_CORE_DC_ANALYSIS_HPP
