// Checkpoint journal for run_set campaigns: an append-only file of completed
// run results, so a campaign interrupted by worker death (or by the parent
// process dying outright) resumes without recomputing finished runs.
//
// Format: a header frame fingerprinting the campaign (scenario name, base
// seed, run count, keep-waveforms flag), then one wire-protocol result frame
// per completed run, appended and flushed as results arrive.  Every frame
// carries its own length prefix and FNV-1a checksum, so a torn tail — the
// parent died mid-append — is detected and dropped on load instead of
// corrupting the resume.
//
// What gets journaled: results of runs that *completed*, successfully or
// with a run-level error (a deterministic model failure would just recur).
// Runs lost to infrastructure failure — a worker SIGKILLed mid-run, a dead
// TCP endpoint — are NOT journaled, so a resume recomputes exactly those.
#ifndef SCA_CORE_RUN_CHECKPOINT_HPP
#define SCA_CORE_RUN_CHECKPOINT_HPP

#include <cstdint>
#include <map>
#include <string>

#include "core/run_set.hpp"

namespace sca::core {

/// Campaign identity written to (and verified against) a journal header:
/// resuming a journal recorded for a different campaign is an error, not a
/// silent mix of incompatible rows.
struct checkpoint_fingerprint {
    std::string scenario_name;
    std::uint64_t base_seed = 0;
    std::uint64_t n_runs = 0;
    bool keep_waveforms = true;

    bool operator==(const checkpoint_fingerprint&) const = default;
};

/// Append-side handle.  Opens (creating or appending to) the journal file;
/// a fresh file gets the header frame immediately.
class checkpoint_writer {
public:
    checkpoint_writer(const std::string& path, const checkpoint_fingerprint& fp);
    ~checkpoint_writer();

    checkpoint_writer(const checkpoint_writer&) = delete;
    checkpoint_writer& operator=(const checkpoint_writer&) = delete;

    /// Append one completed result and flush it to the OS, so the record
    /// survives the parent dying right after.
    void append(const run_result& r);

    /// Append a full-state warm-start snapshot payload (core/snapshot
    /// format, unframed) under the campaign fingerprint.  Journal readers
    /// that predate snapshots skip the frame; load_checkpoint_snapshot()
    /// recovers it.
    void append_snapshot(const std::vector<std::uint8_t>& snapshot_payload);

private:
    int fd_ = -1;
};

/// Completed results recovered from a journal, keyed by run index.  A
/// missing file yields an empty map; a fingerprint mismatch throws.  The
/// last record wins when an index somehow appears twice (it cannot through
/// this API, but the loader is tolerant).
[[nodiscard]] std::map<std::size_t, run_result> load_checkpoint(
    const std::string& path, const checkpoint_fingerprint& expect);

/// The last warm-start snapshot payload recorded in a journal, or an empty
/// vector when the journal is absent or carries none.  A fingerprint
/// mismatch throws.  Feed the payload to core::decode_snapshot() to stand a
/// testbench at the recorded state.
[[nodiscard]] std::vector<std::uint8_t> load_checkpoint_snapshot(
    const std::string& path, const checkpoint_fingerprint& expect);

/// Run indices recorded in a journal, in file order — test/diagnostic hook
/// for the "every index exactly once" resume invariant.
[[nodiscard]] std::vector<std::uint64_t> checkpoint_indices(const std::string& path);

}  // namespace sca::core

#endif  // SCA_CORE_RUN_CHECKPOINT_HPP
