// Execution backends for run_set::run_all(): the same campaign (scenario x
// parameter points, atomic-index dispatch, results slotted by run index) can
// execute on an in-process thread pool, on fork()ed worker subprocesses
// speaking the wire protocol over socketpairs, or on remote TCP workers
// speaking the identical protocol.  Results stream back to the parent as
// they complete; a parent-side dispatcher owns job assignment so dispatch
// order never depends on worker timing.
//
// Determinism contract (unchanged from PR 3, now across process boundaries):
// every run derives its parameters and seed from (base_seed, run index)
// alone, doubles travel bit-exactly (see run_protocol.hpp), and results land
// in their run-index slot — so any backend at any worker count produces a
// result_table byte-identical to sequential in-thread execution.
//
// Failure model: a run that throws records `error` in its slot (the worker
// reports it like any result).  A worker that *dies* (SIGKILL, crash) takes
// only its in-flight run down: the parent marks that slot with an
// infrastructure error, respawns a replacement (multiprocess) or retires the
// endpoint (remote TCP), and the campaign continues.  With a checkpoint
// journal configured (run_set::set_checkpoint) completed runs are persisted
// as they arrive and a re-run recomputes only the missing ones.
#ifndef SCA_CORE_RUN_BACKEND_HPP
#define SCA_CORE_RUN_BACKEND_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/run_set.hpp"

namespace sca::core {

namespace detail {

/// Delivery hook invoked once per filled result slot, in arrival order, on
/// the dispatching thread (serialized under a mutex for the thread pool).
/// `completed` distinguishes runs that actually finished (worker reported a
/// result — ok or run-level error) from runs lost to infrastructure failure
/// (worker death, dead endpoint); only completed runs belong in a journal.
using result_sink = std::function<void(const run_result&, bool completed)>;

/// Thread-pool execution of `pending` run indices (the PR-3 engine, now
/// restricted to an explicit index list so checkpoint resume can skip
/// finished runs).
void execute_in_thread(const run_set& rs, const std::vector<std::size_t>& pending,
                       std::vector<run_result>& results, unsigned workers,
                       const result_sink& deliver);

/// Fork/socketpair execution: `workers` subprocesses, parent-side poll()
/// dispatcher, automatic respawn after worker death.
void execute_multiprocess(const run_set& rs, const std::vector<std::size_t>& pending,
                          std::vector<run_result>& results, unsigned workers,
                          const result_sink& deliver);

/// Remote-TCP execution: one connection per "host:port" endpoint (numeric
/// IPv4), same dispatcher, no respawn — a dead endpoint is retired and its
/// in-flight run recorded as lost.
void execute_remote_tcp(const run_set& rs, const std::vector<std::size_t>& pending,
                        std::vector<run_result>& results,
                        const std::vector<std::string>& endpoints,
                        const result_sink& deliver);

}  // namespace detail

// -------------------------------------------------------------- worker side --

/// Blocking worker loop over a connected stream fd — the worker half of the
/// wire protocol, shared by forked subprocess workers and TCP worker
/// servers: read a job frame, execute run_one(index), write the result
/// frame, repeat until shutdown or EOF.  Returns normally on clean shutdown
/// and when the parent disappears; protocol violations throw.
void run_worker_loop(const run_set& rs, int fd);

/// Create a listening TCP socket on 127.0.0.1.  `port` 0 picks an ephemeral
/// port; the chosen port is written back.  Returns the listening fd.
[[nodiscard]] int listen_tcp(std::uint16_t& port);

/// Accept and serve worker sessions on `listen_fd` (blocking): each accepted
/// connection runs run_worker_loop to completion.  Serves `max_sessions`
/// sessions then returns (0 = serve forever).  This is the process body of a
/// remote worker host; tests fork one on a loopback socket.
void serve_tcp_workers(const run_set& rs, int listen_fd, unsigned max_sessions);

}  // namespace sca::core

#endif  // SCA_CORE_RUN_BACKEND_HPP
