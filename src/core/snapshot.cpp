#include "core/snapshot.hpp"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <map>
#include <unordered_map>
#include <utility>

#include "core/run_protocol.hpp"
#include "core/scenario.hpp"
#include "kernel/context.hpp"
#include "kernel/event.hpp"
#include "kernel/object.hpp"
#include "kernel/process.hpp"
#include "kernel/scheduler.hpp"
#include "tdf/cluster.hpp"
#include "util/bytes.hpp"
#include "util/report.hpp"
#include "util/telemetry.hpp"
#include "util/trace_export.hpp"

namespace sca::core {

namespace {

// ----------------------------------------------------------------- params --
// Self-contained parameter encoding (the snapshot does not reuse the wire
// result-table layout: the payload carries its own format version and must
// stay decodable independently of protocol evolution).

void write_params(util::byte_writer& w, const params& p) {
    w.u64(p.entries().size());
    for (const auto& [name, v] : p.entries()) {
        w.str(name);
        if (std::holds_alternative<double>(v)) {
            w.u8(0);
            w.f64(std::get<double>(v));
        } else {
            w.u8(1);
            w.str(std::get<std::string>(v));
        }
    }
    w.u64(p.run_index());
    w.u64(p.seed());
}

params read_params(util::byte_reader& r) {
    params p;
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::string name = r.str();
        const std::uint8_t tag = r.u8();
        if (tag == 0) {
            p.set(name, r.f64());
        } else if (tag == 1) {
            p.set(name, r.str());
        } else {
            util::report_fatal("snapshot", "unknown parameter value tag");
        }
    }
    const std::uint64_t run_index = r.u64();
    const std::uint64_t seed = r.u64();
    p.set_run_identity(static_cast<std::size_t>(run_index), seed);
    return p;
}

// ----------------------------------------------------- structural identity --

/// Fingerprint of the model *shape*: scenario, parameters, every object's
/// full hierarchical name and kind, every process name (in registration
/// order).  Live state — signal values, cluster timesteps, solver history —
/// is deliberately excluded: the fingerprint must match between the saved
/// model mid-run and the freshly rebuilt one.
std::uint32_t structural_fingerprint(testbench& tb) {
    util::byte_writer w;
    w.str(tb.name());
    write_params(w, tb.parameters());
    de::simulation_context& ctx = tb.context();
    for (const de::object* o : ctx.hierarchy()) {
        w.str(o->name());
        w.str(o->kind());
    }
    for (const de::method_process* p : ctx.sched().processes()) w.str(p->name());
    const std::vector<std::uint8_t>& bytes = w.bytes();
    return util::fnv1a_32(bytes.data(), bytes.size());
}

// ----------------------------------------------------------- event identity --
// Two stable namespaces identify an event across processes:
//   kind 1: the lazily created timeout event of a process, keyed by the
//           owning process's registration index (its creation time varies,
//           so its position in the context's event list is NOT stable);
//   kind 0: any other event, keyed by (name, occurrence index among
//           same-named non-timeout events in registration order).  Build-time
//           events register deterministically because the scenario factory
//           replays the same construction; per-name occurrence also absorbs
//           lazily created edge events, which restore recreates in hierarchy
//           order rather than first-use order.

struct event_namespace {
    std::unordered_map<const de::event*, std::uint64_t> timeout_owner;
    std::unordered_map<const de::event*, std::uint64_t> occurrence;
    std::map<std::string, std::vector<de::event*>> by_name;
};

event_namespace build_event_namespace(de::simulation_context& ctx) {
    event_namespace ns;
    const auto& procs = ctx.sched().processes();
    for (std::uint64_t i = 0; i < procs.size(); ++i) {
        if (const de::event* t = procs[i]->timeout_event()) ns.timeout_owner[t] = i;
    }
    for (de::event* e : ctx.events()) {
        if (ns.timeout_owner.count(e) != 0) continue;
        auto& same_name = ns.by_name[e->name()];
        ns.occurrence[e] = same_name.size();
        same_name.push_back(e);
    }
    return ns;
}

void write_event_key(util::byte_writer& w, const event_namespace& ns, const de::event& e) {
    auto t = ns.timeout_owner.find(&e);
    if (t != ns.timeout_owner.end()) {
        w.u8(1);
        w.u64(t->second);
        return;
    }
    auto o = ns.occurrence.find(&e);
    util::require(o != ns.occurrence.end(), "snapshot",
                  "event '" + e.name() + "' is not registered with the saved context");
    w.u8(0);
    w.str(e.name());
    w.u64(o->second);
}

de::event& read_event_key(util::byte_reader& r, const event_namespace& ns,
                          const std::vector<de::method_process*>& procs) {
    const std::uint8_t kind = r.u8();
    if (kind == 1) {
        const std::uint64_t idx = r.u64();
        util::require(idx < procs.size(), "snapshot",
                      "timeout-event process index out of range");
        return procs[idx]->ensure_timeout_event();
    }
    util::require(kind == 0, "snapshot", "unknown event key kind");
    const std::string name = r.str();
    const std::uint64_t occurrence = r.u64();
    auto it = ns.by_name.find(name);
    util::require(it != ns.by_name.end() && occurrence < it->second.size(), "snapshot",
                  "the rebuilt model has no event '" + name + "' (occurrence " +
                      std::to_string(occurrence) + ")");
    return *it->second[occurrence];
}

// ------------------------------------------------------------------- save --

/// Objects that carry snapshot state, in hierarchy pre-order (parents before
/// children, so a dae_module overlays its equation values before its
/// components overlay their own private state).
std::vector<de::object*> stateful_objects(de::simulation_context& ctx) {
    std::vector<de::object*> out;
    for (de::object* o : ctx.hierarchy()) {
        if (o->has_snapshot_state()) out.push_back(o);
    }
    return out;
}

}  // namespace

std::vector<std::uint8_t> encode_snapshot(testbench& tb) {
    tb.activate();
    de::simulation_context& ctx = tb.context();
    de::scheduler& sched = ctx.sched();
    SCA_SCOPED_TIMER(&ctx.metrics().get_histogram("time.snapshot.save_s"));
    SCA_TRACE_SPAN_T(&ctx.tracer(), "snapshot.save", "snapshot", sched.now().to_seconds());

    // A snapshot is only meaningful at a settled point: run() has returned,
    // every same-instant notification is delivered, and the only pending
    // activity is strictly in the future.
    util::require(ctx.elaborated(), "snapshot",
                  "snapshot requires an elaborated simulation");
    util::require(sched.initialized(), "snapshot",
                  "snapshot requires a simulation that has run at least once");
    util::require(sched.settled(), "snapshot",
                  "snapshot requires a settled instant (run() must have returned)");

    const auto names = scenario::names();
    util::require(std::find(names.begin(), names.end(), tb.name()) != names.end(),
                  "snapshot",
                  "testbench '" + tb.name() +
                      "' was not built from a registered scenario; resume could "
                      "not rebuild it");

    const event_namespace ns = build_event_namespace(ctx);
    const auto pending = sched.pending_timed_events();
    for (const auto& [at, ev] : pending) {
        util::require(at > sched.now(), "snapshot",
                      "snapshot requires a settled instant: event '" + ev->name() +
                          "' is still pending at the current time");
    }

    util::byte_writer w;
    w.u32(k_snapshot_version);
    w.str(tb.name());
    write_params(w, tb.parameters());
    w.u32(structural_fingerprint(tb));

    // --- kernel clock & counters -------------------------------------------
    w.i64(sched.now().value_fs());
    w.u64(sched.delta_count());
    w.u64(sched.timed_notification_count());

    // --- object state (hierarchy pre-order) --------------------------------
    const auto objects = stateful_objects(ctx);
    w.u64(objects.size());
    for (const de::object* o : objects) {
        w.str(o->name());
        w.str(o->kind());
        o->save_state(w);
    }

    // --- processes (registration order) ------------------------------------
    const auto& procs = sched.processes();
    w.u64(procs.size());
    for (const de::method_process* p : procs) {
        w.str(p->name());
        w.boolean(p->dynamically_waiting());
        w.u64(p->activation_count());
        w.boolean(p->timeout_event() != nullptr);
        const auto& dyn = p->dynamic_events();
        w.u64(dyn.size());
        for (const de::event* e : dyn) write_event_key(w, ns, *e);
    }

    // --- events: dynamic subscriber lists, then the live timed queue -------
    std::vector<const de::event*> with_subs;
    for (const de::event* e : ctx.events()) {
        if (!e->dynamic_subscribers().empty()) with_subs.push_back(e);
    }
    w.u64(with_subs.size());
    for (const de::event* e : with_subs) {
        write_event_key(w, ns, *e);
        const auto& subs = e->dynamic_subscribers();
        w.u64(subs.size());
        for (const de::method_process* p : subs) {
            // Subscriber identity is the process registration index.
            std::uint64_t idx = 0;
            while (idx < procs.size() && procs[idx] != p) ++idx;
            util::require(idx < procs.size(), "snapshot",
                          "dynamic subscriber of '" + e->name() +
                              "' is not a registered process");
            w.u64(idx);
        }
    }
    // Queue order carries the same-instant firing order; restore replays the
    // entries one by one so equal-time notifications keep it.
    w.u64(pending.size());
    for (const auto& [at, ev] : pending) {
        w.i64(at.value_fs());
        write_event_key(w, ns, *ev);
    }

    // --- TDF clusters -------------------------------------------------------
    const auto& clusters = tdf::registry::of(ctx).clusters();
    w.u64(clusters.size());
    for (const auto& c : clusters) c->save_state(w);

    return w.take();
}

std::unique_ptr<testbench> decode_snapshot(const std::uint8_t* data, std::size_t n) {
    util::byte_reader r(data, n);

    const std::uint32_t version = r.u32();
    util::require(version == k_snapshot_version, "snapshot",
                  "unsupported snapshot version " + std::to_string(version) +
                      " (this build reads version " +
                      std::to_string(k_snapshot_version) + ")");
    const std::string scenario_name = r.str();
    const params p = read_params(r);
    const std::uint32_t saved_fingerprint = r.u32();

    // Rebuild the model through the scenario factory, replicate the first
    // run()'s pre-advance steps (probe recorder registration), elaborate —
    // and only then check that the rebuilt shape is the saved shape.
    auto tb = scenario::find(scenario_name).build(p);
    tb->attach_trace_for_resume();
    tb->elaborate();
    util::require(structural_fingerprint(*tb) == saved_fingerprint, "snapshot",
                  "structural fingerprint mismatch: scenario '" + scenario_name +
                      "' rebuilt a different model than the one saved; refusing "
                      "to overlay state");

    de::simulation_context& ctx = tb->context();
    de::scheduler& sched = ctx.sched();
    SCA_SCOPED_TIMER(&ctx.metrics().get_histogram("time.snapshot.restore_s"));
    SCA_TRACE_SPAN(&ctx.tracer(), "snapshot.restore", "snapshot");

    // --- kernel clock & counters -------------------------------------------
    const de::time now = de::time::from_fs(r.i64());
    const std::uint64_t delta_count = r.u64();
    const std::uint64_t timed_notifications = r.u64();
    sched.begin_restore(now);

    // --- object state (hierarchy pre-order) --------------------------------
    const auto objects = stateful_objects(ctx);
    const std::uint64_t n_objects = r.u64();
    util::require(n_objects == objects.size(), "snapshot",
                  "the rebuilt model has " + std::to_string(objects.size()) +
                      " stateful objects, the snapshot " + std::to_string(n_objects));
    for (de::object* o : objects) {
        const std::string name = r.str();
        const std::string kind = r.str();
        util::require(name == o->name() && kind == o->kind(), "snapshot",
                      "object walk diverged: snapshot has '" + name + "' (" + kind +
                          "), rebuilt model has '" + o->name() + "' (" + o->kind() +
                          ")");
        o->restore_state(r);
    }

    // --- processes ----------------------------------------------------------
    const auto& procs = sched.processes();
    const std::uint64_t n_procs = r.u64();
    util::require(n_procs == procs.size(), "snapshot",
                  "the rebuilt model registered " + std::to_string(procs.size()) +
                      " processes, the snapshot has " + std::to_string(n_procs));

    // First pass: read the records and make sure every saved timeout event
    // exists before any event key is resolved (a process may wait on another
    // process's timeout event only through its own record's key list, which
    // is resolved in the second pass).
    struct saved_process {
        bool dynamic_waiting;
        std::uint64_t activations;
        bool has_timeout;
        std::vector<std::pair<std::uint8_t, std::pair<std::string, std::uint64_t>>> keys;
    };
    std::vector<saved_process> saved;
    saved.reserve(procs.size());
    for (std::size_t i = 0; i < procs.size(); ++i) {
        const std::string name = r.str();
        util::require(name == procs[i]->name(), "snapshot",
                      "process order diverged: snapshot has '" + name +
                          "', rebuilt model has '" + procs[i]->name() + "'");
        saved_process sp;
        sp.dynamic_waiting = r.boolean();
        sp.activations = r.u64();
        sp.has_timeout = r.boolean();
        const std::uint64_t n_keys = r.u64();
        sp.keys.reserve(n_keys);
        for (std::uint64_t k = 0; k < n_keys; ++k) {
            const std::uint8_t kind = r.u8();
            if (kind == 1) {
                sp.keys.push_back({1, {std::string(), r.u64()}});
            } else {
                util::require(kind == 0, "snapshot", "unknown event key kind");
                std::string ev_name = r.str();
                const std::uint64_t occurrence = r.u64();
                sp.keys.push_back({0, {std::move(ev_name), occurrence}});
            }
        }
        saved.push_back(std::move(sp));
    }
    for (std::size_t i = 0; i < procs.size(); ++i) {
        if (saved[i].has_timeout) (void)procs[i]->ensure_timeout_event();
    }
    const event_namespace ns = build_event_namespace(ctx);
    auto resolve = [&](std::uint8_t kind, const std::string& name,
                       std::uint64_t index) -> de::event& {
        if (kind == 1) {
            util::require(index < procs.size(), "snapshot",
                          "timeout-event process index out of range");
            return procs[index]->ensure_timeout_event();
        }
        auto it = ns.by_name.find(name);
        util::require(it != ns.by_name.end() && index < it->second.size(), "snapshot",
                      "the rebuilt model has no event '" + name + "' (occurrence " +
                          std::to_string(index) + ")");
        return *it->second[index];
    };

    // --- events -------------------------------------------------------------
    const std::uint64_t n_with_subs = r.u64();
    for (std::uint64_t i = 0; i < n_with_subs; ++i) {
        de::event& e = read_event_key(r, ns, procs);
        const std::uint64_t n_subs = r.u64();
        for (std::uint64_t s = 0; s < n_subs; ++s) {
            const std::uint64_t idx = r.u64();
            util::require(idx < procs.size(), "snapshot",
                          "dynamic subscriber process index out of range");
            e.add_dynamic_subscriber(*procs[idx]);
        }
    }
    const std::uint64_t n_timed = r.u64();
    for (std::uint64_t i = 0; i < n_timed; ++i) {
        const de::time at = de::time::from_fs(r.i64());
        de::event& e = read_event_key(r, ns, procs);
        e.restore_timed(at);
    }

    // Second pass over processes: wait states and the ordered mirror of the
    // events each one is dynamically waiting on.
    for (std::size_t i = 0; i < procs.size(); ++i) {
        procs[i]->restore_dynamic_wait(saved[i].dynamic_waiting);
        procs[i]->restore_activation_count(saved[i].activations);
        for (const auto& [kind, key] : saved[i].keys) {
            procs[i]->restore_dynamic_event(resolve(kind, key.first, key.second));
        }
    }

    // --- TDF clusters -------------------------------------------------------
    const auto& clusters = tdf::registry::of(ctx).clusters();
    const std::uint64_t n_clusters = r.u64();
    util::require(n_clusters == clusters.size(), "snapshot",
                  "the rebuilt model has " + std::to_string(clusters.size()) +
                      " TDF clusters, the snapshot " + std::to_string(n_clusters));
    for (const auto& c : clusters) c->restore_state(r);

    sched.finish_restore(delta_count, timed_notifications);
    util::require(r.at_end(), "snapshot", "trailing bytes after snapshot payload");
    return tb;
}

std::unique_ptr<testbench> decode_snapshot(const std::vector<std::uint8_t>& payload) {
    return decode_snapshot(payload.data(), payload.size());
}

// ------------------------------------------------------------ stream level --

void save_snapshot(testbench& tb, std::ostream& os) {
    const std::vector<std::uint8_t> frame =
        wire::pack_frame(wire::msg_type::snapshot_state, encode_snapshot(tb));
    os.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
    util::require(os.good(), "snapshot", "snapshot write failed");
}

std::unique_ptr<testbench> resume_snapshot(std::istream& is) {
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(is)),
                                    std::istreambuf_iterator<char>());
    std::size_t offset = 0;
    wire::frame f;
    util::require(wire::unpack_frame(bytes.data(), bytes.size(), offset, f), "snapshot",
                  "snapshot file is empty");
    util::require(f.type == wire::msg_type::snapshot_state, "snapshot",
                  "not a snapshot file (unexpected frame type)");
    util::require(offset == bytes.size(), "snapshot",
                  "trailing bytes after the snapshot frame");
    return decode_snapshot(f.payload);
}

// -------------------------------------------------------------- file level --

void save_snapshot(testbench& tb, const std::string& path) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    util::require(os.is_open(), "snapshot", "cannot open '" + path + "' for writing");
    save_snapshot(tb, os);
    os.close();
    util::require(os.good(), "snapshot", "snapshot write to '" + path + "' failed");
}

std::unique_ptr<testbench> resume_snapshot(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    util::require(is.is_open(), "snapshot", "cannot open snapshot file '" + path + "'");
    return resume_snapshot(is);
}

// ----------------------------------------------- testbench / scenario API --
// Implemented here (not in scenario.cpp) so the scenario layer keeps no
// dependency on the snapshot machinery.

void testbench::snapshot(const std::string& path) { save_snapshot(*this, path); }

std::unique_ptr<testbench> scenario::resume(const std::string& path) {
    return resume_snapshot(path);
}

}  // namespace sca::core
