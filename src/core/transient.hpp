// Transient analysis convenience: run a simulation while recording chosen
// probes into memory, returning (t, values) arrays ready for measurement.
#ifndef SCA_CORE_TRANSIENT_HPP
#define SCA_CORE_TRANSIENT_HPP

#include <functional>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "util/trace.hpp"

namespace sca::core {

/// Declarative transient run: records every added probe at `sample_period`
/// while the simulation advances by `duration`.
class transient_recorder {
public:
    transient_recorder(simulation& sim, const de::time& sample_period);

    void add_probe(std::string name, std::function<double()> probe);

    /// Run and hand back the recorded data (times + one column per probe).
    void run(const de::time& duration);

    [[nodiscard]] const std::vector<double>& times() const { return trace_.times(); }
    [[nodiscard]] std::vector<double> column(std::size_t i) const {
        return trace_.column(i);
    }
    [[nodiscard]] const util::memory_trace& trace() const noexcept { return trace_; }

private:
    simulation* sim_;
    util::memory_trace trace_;
};

}  // namespace sca::core

#endif  // SCA_CORE_TRANSIENT_HPP
