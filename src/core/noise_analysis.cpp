#include "core/noise_analysis.hpp"

#include "core/scenario.hpp"

namespace sca::core {

noise_analysis::noise_analysis(tdf::dae_module& view) : view_(&view) { view.build_now(); }

noise_analysis::noise_analysis(tdf::dae_module& view, std::vector<double> dc_operating_point)
    : view_(&view), dc_(std::move(dc_operating_point)), have_dc_(true) {
    view.build_now();
}

noise_analysis::noise_analysis(testbench& tb) : noise_analysis(tb.view()) {}

noise_analysis::noise_analysis(testbench& tb, const std::string& view_name)
    : noise_analysis(tb.view(view_name)) {}

solver::noise_result noise_analysis::run(std::size_t output,
                                         const solver::sweep& sw) const {
    if (have_dc_) {
        return sca::solver::noise_solver(view_->equations(), dc_).analyze(output, sw);
    }
    return sca::solver::noise_solver(view_->equations()).analyze(output, sw);
}

void noise_analysis::write(const solver::noise_result& result, util::trace_file& file) {
    static thread_local const solver::noise_point* current = nullptr;
    file.add_channel("total_psd", [] { return current->total_psd; });
    for (std::size_t s = 0; s < result.source_names.size(); ++s) {
        file.add_channel(result.source_names[s],
                         [s] { return current->per_source[s]; });
    }
    for (const auto& p : result.points) {
        current = &p;
        file.sample(p.frequency);
    }
    current = nullptr;
}

}  // namespace sca::core
