// Noise analysis driver over a continuous-time view (paper phase 1: "noise
// simulation").  Thin wrapper around solver::noise_solver with reporting.
#ifndef SCA_CORE_NOISE_ANALYSIS_HPP
#define SCA_CORE_NOISE_ANALYSIS_HPP

#include <vector>

#include "solver/noise.hpp"
#include "tdf/dae_module.hpp"
#include "util/trace.hpp"

namespace sca::core {

class noise_analysis {
public:
    explicit noise_analysis(tdf::dae_module& view);
    noise_analysis(tdf::dae_module& view, std::vector<double> dc_operating_point);

    /// Output-referred noise PSD sweep at the given unknown.
    [[nodiscard]] solver::noise_result run(std::size_t output,
                                           const solver::sweep& sw) const;

    /// Rows: frequency, total PSD, then one column per source.
    static void write(const solver::noise_result& result, util::trace_file& file);

private:
    tdf::dae_module* view_;
    std::vector<double> dc_;
    bool have_dc_ = false;
};

}  // namespace sca::core

#endif  // SCA_CORE_NOISE_ANALYSIS_HPP
