// Noise analysis driver over a continuous-time view (paper phase 1: "noise
// simulation").  Thin wrapper around solver::noise_solver with reporting.
#ifndef SCA_CORE_NOISE_ANALYSIS_HPP
#define SCA_CORE_NOISE_ANALYSIS_HPP

#include <string>
#include <vector>

#include "solver/noise.hpp"
#include "tdf/dae_module.hpp"
#include "util/trace.hpp"

namespace sca::core {

class testbench;

class noise_analysis {
public:
    explicit noise_analysis(tdf::dae_module& view);
    noise_analysis(tdf::dae_module& view, std::vector<double> dc_operating_point);

    /// Analyse the testbench's continuous-time view (elaborating first), so
    /// one scenario-built model serves DC, AC, noise, and transient runs.
    explicit noise_analysis(testbench& tb);
    noise_analysis(testbench& tb, const std::string& view_name);

    /// Output-referred noise PSD sweep at the given unknown.
    [[nodiscard]] solver::noise_result run(std::size_t output,
                                           const solver::sweep& sw) const;

    /// Rows: frequency, total PSD, then one column per source.
    static void write(const solver::noise_result& result, util::trace_file& file);

private:
    tdf::dae_module* view_;
    std::vector<double> dc_;
    bool have_dc_ = false;
};

}  // namespace sca::core

#endif  // SCA_CORE_NOISE_ANALYSIS_HPP
