// Full-state snapshots and deterministic resume (checkpoint/restore).
//
// A snapshot captures everything a settled simulation needs to continue
// bit-identically: the kernel clock and counters, every pending timed
// notification (in queue order, so same-instant events refire in the
// original registration order), process wait states, DE signal values, TDF
// ring-buffer tokens and read/write positions, compiled-schedule signatures,
// and the solvers' integration history including the frozen LU pivot order.
//
// What a snapshot does NOT capture is behavioral *code*: restore rebuilds
// the model through the scenario factory (the same build lambda that made
// the original), then overlays the saved state onto the rebuilt objects.  A
// structural fingerprint — scenario name, parameters, the object hierarchy,
// the process list — is verified before any overlay; a mismatch is refused
// with a diagnostic instead of producing a silently wrong simulation.
//
// On-disk format: exactly one SCA1 frame (the framing, checksum, and
// size-limit discipline of core/run_protocol) of type
// wire::msg_type::snapshot_state, whose payload starts with a format
// version.  The same frame can be appended to a run_set checkpoint journal
// (journal readers skip non-result frames), which is how a campaign records
// a warm-start state under its fingerprint header.
#ifndef SCA_CORE_SNAPSHOT_HPP
#define SCA_CORE_SNAPSHOT_HPP

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

namespace sca::core {

class testbench;

/// Version of the snapshot payload layout (inside the SCA1 frame).
inline constexpr std::uint32_t k_snapshot_version = 1;

// ----------------------------------------------------------- payload level --

/// Serialize a settled testbench into a snapshot payload (no framing).
/// Requires: the bench was built by a registered scenario, has run at least
/// once, and run() has returned (the instant is fully evaluated).
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(testbench& tb);

/// Rebuild a testbench from a snapshot payload: look up the scenario, build
/// with the saved parameters, verify the structural fingerprint, overlay the
/// saved state.  Throws sca::util::error on version/fingerprint mismatch or
/// a malformed payload.
[[nodiscard]] std::unique_ptr<testbench> decode_snapshot(const std::uint8_t* data,
                                                         std::size_t n);
[[nodiscard]] std::unique_ptr<testbench> decode_snapshot(
    const std::vector<std::uint8_t>& payload);

// ------------------------------------------------------------ stream level --

/// Write one SCA1 frame of type wire::msg_type::snapshot_state.
void save_snapshot(testbench& tb, std::ostream& os);

/// Read one snapshot frame and resume from it.  Throws on bad magic,
/// checksum mismatch, truncation, wrong frame type, or trailing bytes.
[[nodiscard]] std::unique_ptr<testbench> resume_snapshot(std::istream& is);

// -------------------------------------------------------------- file level --

void save_snapshot(testbench& tb, const std::string& path);
[[nodiscard]] std::unique_ptr<testbench> resume_snapshot(const std::string& path);

}  // namespace sca::core

#endif  // SCA_CORE_SNAPSHOT_HPP
