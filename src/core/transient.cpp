#include "core/transient.hpp"

namespace sca::core {

transient_recorder::transient_recorder(simulation& sim, const de::time& sample_period)
    : sim_(&sim) {
    sim.trace(trace_, sample_period);
}

void transient_recorder::add_probe(std::string name, std::function<double()> probe) {
    trace_.add_channel(std::move(name), std::move(probe));
}

void transient_recorder::run(const de::time& duration) { sim_->run(duration); }

}  // namespace sca::core
