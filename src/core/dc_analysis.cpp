#include "core/dc_analysis.hpp"

#include <iomanip>
#include <ostream>

#include "core/scenario.hpp"
#include "util/report.hpp"

namespace sca::core {

dc_analysis::dc_analysis(tdf::dae_module& view) : view_(&view) { view.build_now(); }

dc_analysis::dc_analysis(testbench& tb) : dc_analysis(tb.view()) {}

dc_analysis::dc_analysis(testbench& tb, const std::string& view_name)
    : dc_analysis(tb.view(view_name)) {}

std::vector<dc_analysis::entry> dc_analysis::operating_point(double t0) const {
    const auto x = solver::dc_solve(view_->equations(), t0, options_);
    std::vector<entry> op;
    op.reserve(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        op.push_back({view_->equations().unknown_name(i), x[i]});
    }
    return op;
}

double dc_analysis::value(std::size_t unknown, double t0) const {
    util::require(unknown < view_->equations().size(), "dc_analysis",
                  "unknown index out of range");
    return solver::dc_solve(view_->equations(), t0, options_)[unknown];
}

void dc_analysis::write(const std::vector<entry>& op, std::ostream& os) {
    os << "DC operating point (" << op.size() << " unknowns)\n";
    for (const auto& e : op) {
        os << "  " << std::left << std::setw(24) << e.name << std::right
           << std::setw(14) << std::setprecision(6) << std::scientific << e.value
           << '\n';
    }
    os.flags(std::ios::fmtflags{});
}

}  // namespace sca::core
