#include "core/run_set.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <locale>
#include <mutex>
#include <optional>
#include <ostream>
#include <random>
#include <set>
#include <sstream>
#include <thread>
#include <variant>

#include "core/run_backend.hpp"
#include "core/run_checkpoint.hpp"
#include "core/snapshot.hpp"

namespace sca::core {

// ------------------------------------------------------------- param_grid --

param_grid& param_grid::add(std::string name, std::vector<double> values) {
    util::require(!values.empty(), "param_grid", "axis '" + name + "' has no values");
    axis ax{std::move(name), {}};
    ax.values.reserve(values.size());
    for (double v : values) ax.values.emplace_back(v);
    axes_.push_back(std::move(ax));
    return *this;
}

param_grid& param_grid::add(std::string name, std::vector<std::string> values) {
    util::require(!values.empty(), "param_grid", "axis '" + name + "' has no values");
    axis ax{std::move(name), {}};
    ax.values.reserve(values.size());
    for (std::string& v : values) ax.values.emplace_back(std::move(v));
    axes_.push_back(std::move(ax));
    return *this;
}

param_grid& param_grid::add_linspace(std::string name, double lo, double hi,
                                     std::size_t n) {
    util::require(n >= 2, "param_grid", "linspace needs at least two points");
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i) {
        values[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
    }
    return add(std::move(name), std::move(values));
}

param_grid& param_grid::add_logspace(std::string name, double lo, double hi,
                                     std::size_t n) {
    util::require(n >= 2, "param_grid", "logspace needs at least two points");
    util::require(lo > 0.0 && hi > 0.0, "param_grid", "logspace endpoints must be > 0");
    std::vector<double> values(n);
    const double llo = std::log(lo), lhi = std::log(hi);
    for (std::size_t i = 0; i < n; ++i) {
        values[i] = std::exp(llo + (lhi - llo) * static_cast<double>(i) /
                                       static_cast<double>(n - 1));
    }
    return add(std::move(name), std::move(values));
}

std::size_t param_grid::size() const {
    if (axes_.empty()) return 0;
    std::size_t n = 1;
    for (const axis& ax : axes_) n *= ax.values.size();
    return n;
}

params param_grid::at(std::size_t i) const {
    util::require(i < size(), "param_grid", "grid point index out of range");
    params p;
    // Last axis varies fastest, like nested loops in declaration order.
    std::size_t rem = i;
    for (std::size_t a = axes_.size(); a-- > 0;) {
        const axis& ax = axes_[a];
        const params::value& v = ax.values[rem % ax.values.size()];
        rem /= ax.values.size();
        if (std::holds_alternative<double>(v)) {
            p.set(ax.name, std::get<double>(v));
        } else {
            p.set(ax.name, std::get<std::string>(v));
        }
    }
    return p;
}

// ------------------------------------------------------------ monte_carlo --

monte_carlo& monte_carlo::uniform(std::string name, double lo, double hi) {
    dists_.push_back({std::move(name), dist::kind::uniform, lo, hi});
    return *this;
}

monte_carlo& monte_carlo::normal(std::string name, double mean, double sigma) {
    dists_.push_back({std::move(name), dist::kind::normal, mean, sigma});
    return *this;
}

params monte_carlo::at(std::size_t i, std::uint64_t seed) const {
    util::require(i < n_, "monte_carlo", "sample index out of range");
    params p;
    std::mt19937_64 rng(seed);
    for (const dist& d : dists_) {
        double v = 0.0;
        if (d.k == dist::kind::uniform) {
            v = std::uniform_real_distribution<double>(d.a, d.b)(rng);
        } else {
            v = std::normal_distribution<double>(d.a, d.b)(rng);
        }
        p.set(d.name, v);
    }
    return p;
}

// ------------------------------------------------------------- run_result --

double run_result::measurement(const std::string& name) const {
    auto it = measurements.find(name);
    util::require(it != measurements.end(), "run_result",
                  "unknown measurement '" + name + "'");
    return it->second;
}

const std::vector<double>& run_result::waveform(const std::string& name) const {
    for (std::size_t i = 0; i < probe_names.size(); ++i) {
        if (probe_names[i] == name) return waveforms[i];
    }
    util::report_fatal("run_result", "unknown probe '" + name + "'");
}

double run_result::metric(const std::string& name) const {
    for (const util::metric_value& mv : run_metrics) {
        if (mv.name != name) continue;
        return mv.kind == util::metric_value::metric_kind::gauge
                   ? mv.value
                   : static_cast<double>(mv.count);
    }
    return 0.0;
}

// ----------------------------------------------------------- result_table --

std::size_t result_table::failed_count() const {
    std::size_t n = 0;
    for (const run_result& r : runs_) {
        if (!r.ok) ++n;
    }
    return n;
}

std::vector<double> result_table::column(const std::string& measurement) const {
    std::vector<double> out;
    out.reserve(runs_.size());
    for (const run_result& r : runs_) {
        if (r.ok) out.push_back(r.measurement(measurement));
    }
    return out;
}

const run_result* result_table::best(const std::string& measurement,
                                     bool maximize) const {
    const run_result* winner = nullptr;
    for (const run_result& r : runs_) {
        if (!r.ok) continue;
        const double v = r.measurement(measurement);
        if (winner == nullptr ||
            (maximize ? v > winner->measurement(measurement)
                      : v < winner->measurement(measurement))) {
            winner = &r;
        }
    }
    return winner;
}

namespace {
// RFC-4180-style quoting for free-text fields (error messages, string
// parameters): without it a comma in an error shifts every later column.
void write_csv_field(std::ostream& os, const std::string& s) {
    if (s.find_first_of(",\"\n\r") == std::string::npos) {
        os << s;
        return;
    }
    os << '"';
    for (char c : s) {
        if (c == '"') os << '"';
        os << c;
    }
    os << '"';
}
}  // namespace

namespace detail {

void write_csv_header(std::ostream& os, const std::set<std::string>& param_names,
                      const std::set<std::string>& meas_names) {
    os << "run,seed";
    for (const auto& name : param_names) os << ',' << name;
    for (const auto& name : meas_names) os << ',' << name;
    os << ",ok,error\n";
}

void write_csv_row(std::ostream& os, const run_result& r,
                   const std::set<std::string>& param_names,
                   const std::set<std::string>& meas_names) {
    os << r.index << ',' << r.seed;
    for (const auto& name : param_names) {
        os << ',';
        const auto& entries = r.parameters.entries();
        auto it = entries.find(name);
        if (it == entries.end()) continue;
        if (std::holds_alternative<double>(it->second)) {
            os << std::get<double>(it->second);
        } else {
            write_csv_field(os, std::get<std::string>(it->second));
        }
    }
    for (const auto& name : meas_names) {
        os << ',';
        auto it = r.measurements.find(name);
        if (it != r.measurements.end()) os << it->second;
    }
    os << ',' << (r.ok ? 1 : 0) << ',';
    write_csv_field(os, r.error);
    os << '\n';
}

}  // namespace detail

void result_table::write_csv(std::ostream& os) const {
    // Union of parameter and measurement names across runs, sorted.
    std::set<std::string> param_names, meas_names;
    for (const run_result& r : runs_) {
        for (const auto& [name, v] : r.parameters.entries()) param_names.insert(name);
        for (const auto& [name, v] : r.measurements) meas_names.insert(name);
    }
    detail::write_csv_header(os, param_names, meas_names);
    for (const run_result& r : runs_) {
        detail::write_csv_row(os, r, param_names, meas_names);
    }
}

void result_table::write_metrics_csv(std::ostream& os) const {
    // Union of metric names across runs, sorted — so the column set (and
    // with it the whole string) depends only on the campaign content.
    std::set<std::string> names;
    for (const run_result& r : runs_) {
        for (const util::metric_value& mv : r.run_metrics) names.insert(mv.name);
    }
    os << "run";
    for (const auto& name : names) os << ',' << name;
    os << '\n';
    std::ostringstream num;
    num.imbue(std::locale::classic());
    num.precision(17);
    for (const run_result& r : runs_) {
        os << r.index;
        for (const auto& name : names) {
            os << ',';
            for (const util::metric_value& mv : r.run_metrics) {
                if (mv.name != name) continue;
                if (mv.kind == util::metric_value::metric_kind::gauge) {
                    num.str("");
                    num << mv.value;
                    os << num.str();
                } else {
                    os << mv.count;
                }
                break;
            }
        }
        os << '\n';
    }
}

double result_table::metrics_total(const std::string& name) const {
    double total = 0.0;
    for (const run_result& r : runs_) total += r.metric(name);
    return total;
}

// ---------------------------------------------------------------- run_set --

run_set::run_set(scenario sc) : scenario_(std::move(sc)) {
    util::require(scenario_.valid(), "run_set", "run_set needs a defined scenario");
}

run_set& run_set::with_grid(param_grid grid) {
    grid_ = std::move(grid);
    has_grid_ = true;
    return *this;
}

run_set& run_set::with_samples(monte_carlo sampler) {
    sampler_ = std::move(sampler);
    has_sampler_ = true;
    return *this;
}

run_set& run_set::add_point(params p) {
    extra_points_.push_back(std::move(p));
    return *this;
}

run_set& run_set::set_workers(unsigned n) {
    workers_ = n;
    return *this;
}

run_set& run_set::set_base_seed(std::uint64_t seed) {
    base_seed_ = seed;
    return *this;
}

run_set& run_set::keep_waveforms(bool on) {
    keep_waveforms_ = on;
    return *this;
}

run_set& run_set::set_backend(run_backend b) {
    backend_ = b;
    return *this;
}

run_set& run_set::set_endpoints(std::vector<std::string> endpoints) {
    endpoints_ = std::move(endpoints);
    return *this;
}

run_set& run_set::on_result(std::function<void(const run_result&)> cb) {
    on_result_ = std::move(cb);
    return *this;
}

run_set& run_set::stream_csv(std::ostream& os) {
    stream_csv_ = &os;
    return *this;
}

run_set& run_set::set_warm_start(const de::time& settle) {
    util::require(settle > de::time::zero(), "run_set",
                  "warm-start settle time must be positive");
    warm_start_settle_ = settle;
    return *this;
}

run_set& run_set::set_checkpoint(std::string path) {
    checkpoint_path_ = std::move(path);
    return *this;
}

std::size_t run_set::size() const {
    std::size_t n = extra_points_.size();
    if (has_grid_) n += grid_.size();
    if (has_sampler_) n += sampler_.size();
    return n;
}

params run_set::point(std::size_t index, std::uint64_t seed) const {
    std::size_t i = index;
    if (has_grid_) {
        if (i < grid_.size()) return grid_.at(i);
        i -= grid_.size();
    }
    if (has_sampler_) {
        if (i < sampler_.size()) return sampler_.at(i, seed);
        i -= sampler_.size();
    }
    return extra_points_.at(i);
}

run_result run_set::run_one(std::size_t index) const {
    run_result res;
    res.index = index;
    res.seed = detail::derive_seed(base_seed_, index);
    try {
        params p = point(index, res.seed);
        p.set_run_identity(index, res.seed);
        auto tb = scenario_.build(p);
        res.parameters = tb->parameters();
        tb->run();
        res.measurements = tb->measurements();
        if (keep_waveforms_) {
            res.times = tb->times();
            res.probe_names = tb->probe_names();
            res.waveforms.reserve(res.probe_names.size());
            for (const auto& name : res.probe_names) {
                res.waveforms.push_back(tb->waveform(name));
            }
        }
        res.run_metrics = tb->context().collect_wire_metrics();
        res.ok = true;
    } catch (const std::exception& e) {
        res.ok = false;
        res.error = e.what();
    }
    return res;
}

result_table run_set::run_all() const {
    const std::size_t n = size();
    util::require(n > 0, "run_set", "nothing to run: add a grid, sampler, or point");
    std::vector<run_result> results(n);

    unsigned workers = workers_;
    if (workers == 0) {
        workers = std::max(1U, std::thread::hardware_concurrency());
    }
    workers = static_cast<unsigned>(std::min<std::size_t>(workers, n));

    // Checkpoint resume: install journaled results, compute only the rest.
    std::vector<bool> done(n, false);
    std::optional<checkpoint_writer> journal;
    if (!checkpoint_path_.empty()) {
        const checkpoint_fingerprint fp{scenario_.name(), base_seed_,
                                        static_cast<std::uint64_t>(n), keep_waveforms_};
        for (auto& [index, r] : load_checkpoint(checkpoint_path_, fp)) {
            if (index >= n) continue;
            done[index] = true;
            results[index] = std::move(r);
        }
        journal.emplace(checkpoint_path_, fp);
        // Warm start: record one settled bench at the scenario defaults, so
        // later campaigns (or resumed sessions) can overlay its state
        // instead of re-converging the operating point.  Once per journal.
        if (warm_start_settle_ > de::time::zero() &&
            load_checkpoint_snapshot(checkpoint_path_, fp).empty()) {
            auto warm = scenario_.build();
            warm->run(warm_start_settle_);
            journal->append_snapshot(encode_snapshot(*warm));
        }
    }
    std::vector<std::size_t> pending;
    pending.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (!done[i]) pending.push_back(i);
    }
    if (pending.empty()) return result_table(std::move(results));

    // Streamed delivery: journal append (completed runs only), CSV row, user
    // callback — invoked in arrival order, serialized by the dispatcher.
    std::set<std::string> csv_params, csv_meas;
    bool csv_header_written = false;
    auto deliver = [&](const run_result& r, bool completed) {
        if (journal && completed) journal->append(r);
        if (stream_csv_ != nullptr) {
            if (!csv_header_written) {
                // Column set fixed by the first arriving row (arrival order
                // is backend-dependent; each row carries its run index).
                for (const auto& [name, v] : r.parameters.entries()) csv_params.insert(name);
                for (const auto& [name, v] : r.measurements) csv_meas.insert(name);
                detail::write_csv_header(*stream_csv_, csv_params, csv_meas);
                csv_header_written = true;
            }
            detail::write_csv_row(*stream_csv_, r, csv_params, csv_meas);
        }
        if (on_result_) on_result_(r);
    };

    switch (backend_) {
        case run_backend::in_thread:
            detail::execute_in_thread(*this, pending, results, workers, deliver);
            break;
        case run_backend::multiprocess:
            detail::execute_multiprocess(*this, pending, results, workers, deliver);
            break;
        case run_backend::remote_tcp:
            detail::execute_remote_tcp(*this, pending, results, endpoints_, deliver);
            break;
    }
    return result_table(std::move(results));
}

}  // namespace sca::core
