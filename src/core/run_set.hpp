// Multi-run execution engine over a scenario: parameter grids, Monte Carlo
// sampling, a worker-thread pool, and aggregated result tables.
//
//   auto table = sca::core::run_set(rc)
//                    .with_grid(sca::core::param_grid()
//                                   .add_logspace("r", 100.0, 10e3, 8)
//                                   .add("c", {47e-9, 100e-9}))
//                    .set_workers(8)
//                    .run_all();
//   table.write_csv(std::cout);
//
// Every run instantiates a fully independent testbench (its own
// simulation_context) and executes on whichever worker thread picks it up.
// Results are deterministic and independent of the worker count: parameter
// points are enumerated in a fixed order, each run derives its seed from
// (base_seed, run index) alone, and results land in their run-index slot.
#ifndef SCA_CORE_RUN_SET_HPP
#define SCA_CORE_RUN_SET_HPP

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "util/telemetry.hpp"

namespace sca::core {

/// Execution backend for run_set::run_all() — see run_backend.hpp for the
/// dispatch/failure model and docs/api.md for the selection guide.
enum class run_backend : std::uint8_t {
    in_thread,     ///< worker threads inside this process (the default)
    multiprocess,  ///< fork()ed worker subprocesses over socketpairs
    remote_tcp,    ///< remote workers over TCP (set_endpoints), same protocol
};

// --------------------------------------------------------------- sampling --

/// Cartesian product of named value lists, enumerated in a fixed order
/// (last-added axis varies fastest).
class param_grid {
public:
    param_grid& add(std::string name, std::vector<double> values);
    param_grid& add(std::string name, std::vector<std::string> values);
    /// `n` evenly spaced values in [lo, hi] (n >= 2, endpoints included).
    param_grid& add_linspace(std::string name, double lo, double hi, std::size_t n);
    /// `n` logarithmically spaced values in [lo, hi] (lo, hi > 0).
    param_grid& add_logspace(std::string name, double lo, double hi, std::size_t n);

    /// Number of grid points (product of axis sizes; 0 when empty).
    [[nodiscard]] std::size_t size() const;
    /// Parameter set of grid point `i`.
    [[nodiscard]] params at(std::size_t i) const;

private:
    struct axis {
        std::string name;
        std::vector<params::value> values;
    };
    std::vector<axis> axes_;
};

/// Random parameter sampler: each run draws every registered distribution
/// from a generator seeded with that run's deterministic seed.
class monte_carlo {
public:
    explicit monte_carlo(std::size_t n_runs) : n_(n_runs) {}

    monte_carlo& uniform(std::string name, double lo, double hi);
    monte_carlo& normal(std::string name, double mean, double sigma);

    [[nodiscard]] std::size_t size() const noexcept { return n_; }
    /// Draw point `i` using `seed` (the engine passes the per-run seed).
    [[nodiscard]] params at(std::size_t i, std::uint64_t seed) const;

private:
    struct dist {
        enum class kind : std::uint8_t { uniform, normal };
        std::string name;
        kind k;
        double a, b;
    };
    std::size_t n_;
    std::vector<dist> dists_;
};

// ---------------------------------------------------------------- results --

/// Outcome of one scenario run: identity, parameters, measurements, and
/// (unless disabled) the recorded probe waveforms.
struct run_result {
    std::size_t index = 0;
    std::uint64_t seed = 0;
    params parameters;
    std::map<std::string, double> measurements;
    std::vector<double> times;
    std::vector<std::string> probe_names;
    std::vector<std::vector<double>> waveforms;  // one per probe name
    bool ok = false;
    std::string error;
    /// Per-run telemetry: the deterministic counter/gauge subset of the
    /// run's context registry (sorted by name), identical across backends
    /// and worker counts.  Travels as its own wire frame (not part of the
    /// frozen v0 result payload); empty for journal-resumed runs and runs
    /// lost to worker death.
    util::metrics_snapshot run_metrics;
    /// Worker that executed the run (telemetry only — never affects result
    /// content): slot index for in_thread/multiprocess, endpoint index for
    /// remote_tcp, -1 for inline execution and journal-resumed runs.
    int worker = -1;

    [[nodiscard]] double measurement(const std::string& name) const;
    [[nodiscard]] const std::vector<double>& waveform(const std::string& name) const;
    /// Value of a named run metric (0 when absent).
    [[nodiscard]] double metric(const std::string& name) const;
};

/// All runs of a run_set, ordered by run index.
class result_table {
public:
    result_table() = default;
    explicit result_table(std::vector<run_result> runs) : runs_(std::move(runs)) {}

    [[nodiscard]] std::size_t size() const noexcept { return runs_.size(); }
    [[nodiscard]] const run_result& operator[](std::size_t i) const { return runs_.at(i); }
    [[nodiscard]] const std::vector<run_result>& runs() const noexcept { return runs_; }

    [[nodiscard]] std::size_t failed_count() const;

    /// One value per successful run, in run order.
    [[nodiscard]] std::vector<double> column(const std::string& measurement) const;

    /// Successful run with the smallest / largest value of `measurement`
    /// (nullptr when no run succeeded).
    [[nodiscard]] const run_result* best(const std::string& measurement,
                                         bool maximize = false) const;

    /// CSV: run index, seed, every parameter, every measurement, error.
    void write_csv(std::ostream& os) const;

    /// Telemetry CSV: one row per run (index order), one column per metric
    /// name seen in any run.  Deterministic in content for a deterministic
    /// campaign — comparing this string across backends/worker counts is the
    /// bit-for-bit aggregation check.
    void write_metrics_csv(std::ostream& os) const;

    /// Sum of a named counter/gauge metric across all runs that carry it.
    [[nodiscard]] double metrics_total(const std::string& name) const;

private:
    std::vector<run_result> runs_;
};

// ---------------------------------------------------------------- run_set --

/// A scenario plus the set of parameter points to run it at, executed across
/// a worker pool.
class run_set {
public:
    explicit run_set(scenario sc);

    run_set& with_grid(param_grid grid);
    run_set& with_samples(monte_carlo sampler);
    /// Append one explicit parameter point (combines with grid/sampler).
    run_set& add_point(params p);

    /// Workers for run_all() — threads (in_thread) or subprocesses
    /// (multiprocess); 0 (default) means one per hardware thread. 1 on the
    /// in_thread backend executes inline on the calling thread.
    run_set& set_workers(unsigned n);
    run_set& set_base_seed(std::uint64_t seed);
    [[nodiscard]] std::uint64_t base_seed() const noexcept { return base_seed_; }
    /// Keep per-run waveforms in the result table (default true). Turn off
    /// for large sweeps where only measurements matter.
    run_set& keep_waveforms(bool on);

    // --- backend selection / streaming / checkpointing ----------------------
    /// Select the execution backend (default in_thread).  Results are
    /// bit-identical across backends and worker counts by construction.
    run_set& set_backend(run_backend b);
    [[nodiscard]] run_backend backend() const noexcept { return backend_; }
    /// Remote worker endpoints ("ip:port", numeric IPv4) for remote_tcp.
    run_set& set_endpoints(std::vector<std::string> endpoints);

    /// Invoke `cb` once per result as it arrives (arrival order, dispatcher
    /// thread) — streamed rows instead of waiting for the full table.  Lost
    /// runs (worker death) are delivered too, with ok=false.
    run_set& on_result(std::function<void(const run_result&)> cb);
    /// Stream results as CSV rows into `os` as they arrive.  The header is
    /// fixed by the first arriving result's parameter/measurement names;
    /// arrival order is nondeterministic under parallel backends (each row
    /// carries its run index).  The canonical, order-deterministic CSV
    /// remains result_table::write_csv.
    run_set& stream_csv(std::ostream& os);

    /// Journal completed runs to `path` (created on first use, appended on
    /// resume).  A later run_all() with the same campaign (scenario, base
    /// seed, run count, keep_waveforms) loads finished runs from the journal
    /// and computes only the rest — see run_checkpoint.hpp.
    run_set& set_checkpoint(std::string path);

    /// With checkpointing enabled, also record a warm-start snapshot in the
    /// journal: one bench built at the scenario defaults is run for `settle`
    /// (long enough to converge the DC operating point and settle start-up
    /// transients) and its full state is saved under the campaign
    /// fingerprint.  Recorded once per journal; recover the payload with
    /// load_checkpoint_snapshot() and resume via core::decode_snapshot()
    /// instead of re-converging from scratch.  No effect without
    /// set_checkpoint.
    run_set& set_warm_start(const de::time& settle);

    /// Number of runs this set will execute.
    [[nodiscard]] std::size_t size() const;

    /// Execute every run and aggregate the results (index order).
    [[nodiscard]] result_table run_all() const;

    /// Execute a single point by run index on the calling thread.
    [[nodiscard]] run_result run_one(std::size_t index) const;

private:
    [[nodiscard]] params point(std::size_t index, std::uint64_t seed) const;

    scenario scenario_;
    param_grid grid_;
    bool has_grid_ = false;
    monte_carlo sampler_{0};
    bool has_sampler_ = false;
    std::vector<params> extra_points_;
    unsigned workers_ = 0;
    std::uint64_t base_seed_ = 0x5ca5eedULL;
    bool keep_waveforms_ = true;
    run_backend backend_ = run_backend::in_thread;
    std::vector<std::string> endpoints_;
    std::function<void(const run_result&)> on_result_;
    std::ostream* stream_csv_ = nullptr;
    std::string checkpoint_path_;
    de::time warm_start_settle_ = de::time::zero();
};

namespace detail {
/// Shared CSV row formatting (result_table::write_csv and the streamed
/// sink): identical doubles format identically, which is what makes CSV
/// compare a valid bit-identity check across backends.
void write_csv_header(std::ostream& os, const std::set<std::string>& param_names,
                      const std::set<std::string>& meas_names);
void write_csv_row(std::ostream& os, const run_result& r,
                   const std::set<std::string>& param_names,
                   const std::set<std::string>& meas_names);
}  // namespace detail

}  // namespace sca::core

#endif  // SCA_CORE_RUN_SET_HPP
