#include "core/run_backend.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "core/run_protocol.hpp"
#include "util/report.hpp"

namespace sca::core {

namespace detail {

// ---------------------------------------------------------- in-thread pool --

void execute_in_thread(const run_set& rs, const std::vector<std::size_t>& pending,
                       std::vector<run_result>& results, unsigned workers,
                       const result_sink& deliver) {
    workers = static_cast<unsigned>(std::min<std::size_t>(workers, pending.size()));
    if (workers <= 1) {
        for (std::size_t i : pending) {
            results[i] = rs.run_one(i);
            deliver(results[i], /*completed=*/true);
        }
        return;
    }
    // Dynamic work stealing over the pending indices; every run builds its
    // own context on whichever thread claims it, and writes only its own
    // slot.  Delivery is serialized so sinks see whole rows.
    std::atomic<std::size_t> next{0};
    std::mutex deliver_mutex;
    auto work = [&](int slot) {
        for (;;) {
            const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
            if (k >= pending.size()) return;
            const std::size_t i = pending[k];
            results[i] = rs.run_one(i);
            results[i].worker = slot;
            const std::lock_guard<std::mutex> lock(deliver_mutex);
            deliver(results[i], /*completed=*/true);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(work, static_cast<int>(w));
    for (std::thread& t : pool) t.join();
}

// -------------------------------------------------- parent-side dispatcher --

namespace {

/// One connected worker as the dispatcher sees it: a stream fd, the run
/// index currently executing there (-1 when idle), and — for forked
/// subprocess workers — the pid to reap.
struct worker_conn {
    int fd = -1;
    pid_t pid = -1;                // -1: remote worker, nothing to reap
    std::int64_t in_flight = -1;   // run index on the wire, -1 when idle
    int id = -1;                   // stable worker id stamped into run_result::worker
};

/// Describe how a reaped child died, for the lost-run error message.
std::string describe_exit(pid_t pid) {
    int status = 0;
    if (pid < 0 || ::waitpid(pid, &status, 0) != pid) return "worker vanished";
    if (WIFSIGNALED(status)) {
        return "worker killed by signal " + std::to_string(WTERMSIG(status));
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
        return "worker exited with status " + std::to_string(WEXITSTATUS(status));
    }
    return "worker exited before finishing its run";
}

/// Fill a lost run's slot with an infrastructure-error result (identity
/// preserved so the row still carries its index and seed).
run_result lost_result(const run_set& rs, std::size_t index, const std::string& why) {
    run_result r;
    r.index = index;
    r.seed = core::detail::derive_seed(rs.base_seed(), index);
    r.ok = false;
    r.error = why + " (run " + std::to_string(index) + " lost mid-flight)";
    return r;
}

/// Provide a replacement worker after a death while jobs remain; receives
/// the current live worker list (so a forked child can close their fds).
using respawn_fn = std::function<worker_conn(const std::vector<worker_conn>&)>;

/// The shared parent-side dispatcher: hand each idle worker the next pending
/// index, poll the worker fds, slot results as they stream back, and survive
/// worker death.  `respawn` (nullable) provides a replacement worker after a
/// death while jobs remain — the multiprocess backend respawns, the remote
/// backend retires the endpoint instead.
void dispatch(const run_set& rs, const std::vector<std::size_t>& pending,
              std::vector<run_result>& results, std::vector<worker_conn> workers,
              const result_sink& deliver, const respawn_fn& respawn) {
    std::deque<std::size_t> queue(pending.begin(), pending.end());
    std::size_t outstanding = pending.size();  // runs not yet slotted
    // Worker-side telemetry arrives as its own frame immediately before the
    // result frame (the v0 result payload is frozen); stash it by run index
    // and attach when the result lands.
    std::map<std::uint64_t, util::metrics_snapshot> metrics_stash;

    auto assign = [&](worker_conn& w) -> bool {
        // Give `w` the next job; false when the worker is dead (peer gone).
        while (!queue.empty()) {
            const std::size_t index = queue.front();
            if (!wire::write_frame(w.fd, wire::msg_type::job, wire::encode_job(index))) {
                return false;  // job not sent — stays queued for someone else
            }
            queue.pop_front();
            w.in_flight = static_cast<std::int64_t>(index);
            return true;
        }
        return true;  // nothing left to hand out; worker stays idle
    };

    std::function<void(std::size_t, const std::string&)> retire =
        [&](std::size_t slot, const std::string& why) {
            // A worker died: its in-flight run (if any) is recorded as lost —
            // never re-dispatched, so no run can ever execute twice within one
            // campaign — and a replacement is spawned while jobs remain.
            worker_conn& w = workers[slot];
            ::close(w.fd);
            const std::string detail = w.pid >= 0 ? describe_exit(w.pid) : why;
            if (w.in_flight >= 0) {
                const auto index = static_cast<std::size_t>(w.in_flight);
                results[index] = lost_result(rs, index, detail);
                deliver(results[index], /*completed=*/false);
                --outstanding;
            }
            workers.erase(workers.begin() + static_cast<std::ptrdiff_t>(slot));
            if (!queue.empty() && respawn) {
                workers.push_back(respawn(workers));
                if (!assign(workers.back())) {
                    retire(workers.size() - 1, "worker died at spawn");
                }
            }
        };

    for (std::size_t i = 0; i < workers.size();) {
        if (assign(workers[i])) {
            ++i;
        } else {
            retire(i, "worker connection closed");
        }
    }

    while (outstanding > 0) {
        if (workers.empty()) {
            // Every worker is gone and no respawn is possible: record what
            // remains as lost instead of hanging the campaign.
            while (!queue.empty()) {
                const std::size_t index = queue.front();
                queue.pop_front();
                results[index] = lost_result(rs, index, "no workers left");
                deliver(results[index], /*completed=*/false);
                --outstanding;
            }
            break;
        }
        std::vector<pollfd> fds(workers.size());
        for (std::size_t i = 0; i < workers.size(); ++i) {
            fds[i] = {workers[i].fd, POLLIN, 0};
        }
        int rc = ::poll(fds.data(), fds.size(), -1);
        if (rc < 0) {
            if (errno == EINTR) continue;
            util::report_fatal("run_backend",
                               std::string("poll failed: ") + std::strerror(errno));
        }
        for (std::size_t i = 0; i < workers.size();) {
            if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
                ++i;
                continue;
            }
            bool dead = false;
            try {
                wire::frame f;
                if (!wire::read_frame(workers[i].fd, f)) {
                    dead = true;  // clean EOF: worker gone between frames
                } else if (f.type == wire::msg_type::metrics) {
                    wire::run_metrics m =
                        wire::decode_metrics(f.payload.data(), f.payload.size());
                    metrics_stash[m.index] = std::move(m.entries);
                    // The matching result frame follows on this fd; keep
                    // polling (level-triggered, so it fires again).
                } else {
                    util::require(f.type == wire::msg_type::result, "run_backend",
                                  "unexpected frame type from worker");
                    run_result r = wire::decode_result(f.payload.data(), f.payload.size());
                    const std::size_t index = r.index;
                    util::require(index < results.size(), "run_backend",
                                  "worker reported an out-of-range run index");
                    util::require(workers[i].in_flight >= 0 &&
                                      static_cast<std::size_t>(workers[i].in_flight) ==
                                          index,
                                  "run_backend",
                                  "worker reported a result for a run it was not given");
                    results[index] = std::move(r);
                    results[index].worker = workers[i].id;
                    if (auto it = metrics_stash.find(index); it != metrics_stash.end()) {
                        results[index].run_metrics = std::move(it->second);
                        metrics_stash.erase(it);
                    }
                    workers[i].in_flight = -1;
                    deliver(results[index], /*completed=*/true);
                    --outstanding;
                    dead = !assign(workers[i]);
                }
            } catch (const util::error&) {
                dead = true;  // torn frame: worker died mid-write
            }
            if (dead) {
                retire(i, "worker connection lost");
                // workers/fds no longer line up — restart the scan.
                break;
            }
            ++i;
        }
    }

    // Campaign complete: shut the surviving workers down.
    for (worker_conn& w : workers) {
        (void)wire::write_frame(w.fd, wire::msg_type::shutdown, {});
        ::close(w.fd);
        if (w.pid >= 0) ::waitpid(w.pid, nullptr, 0);
    }
}

}  // namespace

// ------------------------------------------------------------ multiprocess --

namespace {

/// Fork one worker subprocess attached via a socketpair.  The child inherits
/// the whole process image — scenario registry and closures included — so no
/// exec/re-registration step is needed; it must not touch the parent's fds
/// (all other worker sockets are closed first) and leaves via _exit so no
/// parent-side atexit/static-destructor state runs twice.
worker_conn fork_worker(const run_set& rs, const std::vector<worker_conn>& existing) {
    int sv[2];
    util::require(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0, "run_backend",
                  std::string("socketpair failed: ") + std::strerror(errno));
    const pid_t pid = ::fork();
    util::require(pid >= 0, "run_backend",
                  std::string("fork failed: ") + std::strerror(errno));
    if (pid == 0) {
        ::close(sv[0]);
        for (const worker_conn& w : existing) ::close(w.fd);
        try {
            run_worker_loop(rs, sv[1]);
        } catch (...) {
            ::_exit(1);
        }
        ::_exit(0);
    }
    ::close(sv[1]);
    return worker_conn{sv[0], pid, -1, -1};
}

}  // namespace

void execute_multiprocess(const run_set& rs, const std::vector<std::size_t>& pending,
                          std::vector<run_result>& results, unsigned workers,
                          const result_sink& deliver) {
    workers = static_cast<unsigned>(
        std::max<std::size_t>(1, std::min<std::size_t>(workers, pending.size())));
    std::vector<worker_conn> conns;
    conns.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        conns.push_back(fork_worker(rs, conns));
        conns.back().id = static_cast<int>(w);
    }
    // Respawned workers get fresh ids so per-worker telemetry never merges
    // a replacement's runs into its predecessor's.
    auto next_id = std::make_shared<int>(static_cast<int>(workers));
    dispatch(rs, pending, results, std::move(conns), deliver,
             [&rs, next_id](const std::vector<worker_conn>& live) {
                 worker_conn w = fork_worker(rs, live);
                 w.id = (*next_id)++;
                 return w;
             });
}

// -------------------------------------------------------------- remote TCP --

namespace {

int connect_endpoint(const std::string& endpoint) {
    const std::size_t colon = endpoint.rfind(':');
    util::require(colon != std::string::npos, "run_backend",
                  "endpoint '" + endpoint + "' is not of the form ip:port");
    const std::string host = endpoint.substr(0, colon);
    const int port = std::atoi(endpoint.c_str() + colon + 1);
    util::require(port > 0 && port < 65536, "run_backend",
                  "endpoint '" + endpoint + "' has an invalid port");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    util::require(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1, "run_backend",
                  "endpoint '" + endpoint + "' is not a numeric IPv4 address");
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    util::require(fd >= 0, "run_backend",
                  std::string("socket failed: ") + std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        const int err = errno;
        ::close(fd);
        util::report_fatal("run_backend", "cannot connect to worker endpoint '" +
                                              endpoint + "': " + std::strerror(err));
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return fd;
}

}  // namespace

void execute_remote_tcp(const run_set& rs, const std::vector<std::size_t>& pending,
                        std::vector<run_result>& results,
                        const std::vector<std::string>& endpoints,
                        const result_sink& deliver) {
    util::require(!endpoints.empty(), "run_backend",
                  "remote_tcp backend needs at least one endpoint "
                  "(run_set::set_endpoints)");
    std::vector<worker_conn> conns;
    conns.reserve(endpoints.size());
    for (const std::string& ep : endpoints) {
        conns.push_back(worker_conn{connect_endpoint(ep), -1, -1,
                                    static_cast<int>(conns.size())});
    }
    // No respawn: a dead endpoint is retired; its in-flight run is recorded
    // as lost and recomputable via the checkpoint journal.
    dispatch(rs, pending, results, std::move(conns), deliver, nullptr);
}

}  // namespace detail

// -------------------------------------------------------------- worker side --

void run_worker_loop(const run_set& rs, int fd) {
    for (;;) {
        wire::frame f;
        if (!wire::read_frame(fd, f)) return;  // parent gone: stop quietly
        if (f.type == wire::msg_type::shutdown) return;
        util::require(f.type == wire::msg_type::job, "run_backend",
                      "unexpected frame type on worker");
        const std::uint64_t index = wire::decode_job(f.payload.data(), f.payload.size());
        const run_result res = rs.run_one(static_cast<std::size_t>(index));
        // Telemetry first, result second: the result frame is what retires
        // the in-flight run on the parent, so its metrics are already
        // stashed when it lands (and a parent that ignores metrics frames
        // stays compatible — the v0 result payload is unchanged).
        wire::run_metrics m;
        m.index = index;
        m.entries = res.run_metrics;
        if (!wire::write_frame(fd, wire::msg_type::metrics, wire::encode_metrics(m))) {
            return;  // parent gone mid-result
        }
        if (!wire::write_frame(fd, wire::msg_type::result, wire::encode_result(res))) {
            return;  // parent gone mid-result
        }
    }
}

int listen_tcp(std::uint16_t& port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    util::require(fd >= 0, "run_backend",
                  std::string("socket failed: ") + std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, 128) != 0) {
        const int err = errno;
        ::close(fd);
        util::report_fatal("run_backend",
                           std::string("cannot listen on 127.0.0.1: ") + std::strerror(err));
    }
    socklen_t len = sizeof addr;
    util::require(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
                  "run_backend", "getsockname failed");
    port = ntohs(addr.sin_port);
    return fd;
}

void serve_tcp_workers(const run_set& rs, int listen_fd, unsigned max_sessions) {
    for (unsigned served = 0; max_sessions == 0 || served < max_sessions; ++served) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            util::report_fatal("run_backend",
                               std::string("accept failed: ") + std::strerror(errno));
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        run_worker_loop(rs, fd);
        ::close(fd);
    }
}

}  // namespace sca::core
