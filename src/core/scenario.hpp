// Reusable testbench definitions (the paper's "one modeling front end, many
// analyses, many experiments" rationale).
//
// A scenario captures *how to build* a testbench as a factory, instead of
// building it imperatively in main():
//
//   auto rc = sca::core::scenario::define(
//       "rc", sca::core::params{{"r", 1e3}, {"c", 100e-9}},
//       [](sca::core::testbench& tb, const sca::core::params& p) {
//           auto& net = tb.make<sca::eln::network>("net");
//           ...build against p.get("r", 1e3)...
//           tb.probe("vout", [&net, out] { return net.voltage(out); });
//           tb.measure("vout_final", [&net, out] { return net.voltage(out); });
//           tb.set_stop_time(sca::de::time::from_seconds(5e-3));
//           tb.set_sample_period(sca::de::time::from_seconds(10e-6));
//       });
//
//   auto tb = rc.build({{"r", 2.2e3}});   // one experiment...
//   tb->run();
//   double v = tb->measurement("vout_final");
//
// ...or many at once through core::run_set, which instantiates N independent
// testbenches (each with its own simulation_context) across worker threads.
//
// The testbench owns everything a single experiment needs: the kernel
// context, the model objects (via make<T>), named probes recorded into an
// in-memory trace, and named measurements evaluated when a run finishes.
// The classic core::simulation remains as the thin single-run facade
// underneath; scenario/testbench is the recommended front end.
//
// Builders compose hierarchically: make<T> a tdf::composite or
// eln::subcircuit (which own their children via module::make_child), wire
// TDF ports with tdf::connect()/operator>>, and bind ELN terminals to
// nodes — see docs/api.md "Hierarchical composition".  Composites behave
// identically inside run_set parallel sweeps (tests/test_hierarchy.cpp).
#ifndef SCA_CORE_SCENARIO_HPP
#define SCA_CORE_SCENARIO_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "core/simulation.hpp"
#include "util/object_bag.hpp"
#include "util/report.hpp"
#include "util/trace.hpp"

namespace sca::tdf {
class dae_module;
}

namespace sca::core {

// ----------------------------------------------------------------- params --

/// Typed, named parameter set with defaults and overrides.  The engine also
/// stamps each run's index and deterministic seed here, so model code can
/// seed its noise sources from `p.seed()`.
class params {
public:
    using value = std::variant<double, std::string>;

    params() = default;
    params(std::initializer_list<std::pair<const std::string, value>> init)
        : values_(init) {}

    params& set(const std::string& name, double v) {
        values_[name] = v;
        return *this;
    }
    params& set(const std::string& name, const char* v) {
        values_[name] = std::string(v);
        return *this;
    }
    params& set(const std::string& name, std::string v) {
        values_[name] = std::move(v);
        return *this;
    }

    [[nodiscard]] bool has(const std::string& name) const {
        return values_.count(name) != 0;
    }

    /// Value of `name`, or `fallback` when absent.
    [[nodiscard]] double get(const std::string& name, double fallback) const;
    [[nodiscard]] std::string get(const std::string& name, const std::string& fallback) const;

    /// Value of `name`; throws when absent (for required parameters).
    [[nodiscard]] double number(const std::string& name) const;
    [[nodiscard]] std::string text(const std::string& name) const;

    /// These overrides layered on top of `defaults`.
    [[nodiscard]] params merged_onto(const params& defaults) const;

    /// Sorted by name — the deterministic column order of result tables.
    [[nodiscard]] const std::map<std::string, value>& entries() const noexcept {
        return values_;
    }

    // --- run identity (stamped by the engine) ------------------------------
    [[nodiscard]] std::size_t run_index() const noexcept { return run_index_; }
    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
    void set_run_identity(std::size_t index, std::uint64_t seed) noexcept {
        run_index_ = index;
        seed_ = seed;
    }

private:
    std::map<std::string, value> values_;
    std::size_t run_index_ = 0;
    std::uint64_t seed_ = 0;
};

// -------------------------------------------------------------- testbench --

/// One fully built experiment: kernel context + owned model objects + named
/// probes and measurements + the elaborate/run lifecycle.  Independent
/// testbenches share no mutable state, so different worker threads may each
/// drive one concurrently.
class testbench {
public:
    explicit testbench(std::string name = "tb");
    ~testbench();

    testbench(const testbench&) = delete;
    testbench& operator=(const testbench&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Construct a model object owned by this testbench (destroyed before
    /// the context, in reverse construction order).  Activates this
    /// testbench's context first, so several testbenches can be built
    /// interleaved on one thread.
    template <typename T, typename... Args>
    T& make(Args&&... args) {
        activate();
        return bag_.make<T>(std::forward<Args>(args)...);
    }

    [[nodiscard]] simulation& sim() noexcept { return sim_; }
    [[nodiscard]] de::simulation_context& context() noexcept { return sim_.context(); }

    /// Make this testbench's context the thread's current one.
    void activate() noexcept { sim_.context().make_current(); }

    /// Parameters this testbench was built with (set by scenario::build).
    [[nodiscard]] const params& parameters() const noexcept { return params_; }
    void set_parameters(params p) { params_ = std::move(p); }

    // --- probes & measurements ---------------------------------------------
    /// Record `fn` under `name` at every sample point of a transient run.
    void probe(std::string name, std::function<double()> fn);
    void probe(std::string name, const de::signal<double>& s) {
        probe(std::move(name), core::probe(s));
    }
    void probe(std::string name, const de::signal<bool>& s) {
        probe(std::move(name), core::probe(s));
    }
    void probe(std::string name, const tdf::signal<double>& s) {
        probe(std::move(name), core::probe(s));
    }

    /// Register a scalar evaluated when a run finishes (waveform statistics,
    /// final values, counters...).
    void measure(std::string name, std::function<double()> fn);

    // --- live parameter hooks ----------------------------------------------
    /// Register a handler applied when `poke(name, value)` is called while
    /// the simulation is stopped between run() slices — the contract the
    /// streaming server uses for mid-session parameter changes (the handler
    /// typically rewrites a module member; dynamic-TDF modules then react
    /// through their own change_attributes path).  Register during build.
    void on_param(std::string name, std::function<void(double)> apply);

    /// Apply a registered param hook; throws when no hook is registered
    /// under `name`.  Must not be called while run() is executing.
    void poke(const std::string& name, double value);

    [[nodiscard]] bool has_param_hook(const std::string& name) const {
        return param_hooks_.count(name) != 0;
    }
    /// Sorted names of the registered param hooks.
    [[nodiscard]] std::vector<std::string> param_names() const;

    /// Record a named constant during build (e.g. the MNA row index of an
    /// output node) so analyses driven from outside the build lambda can
    /// refer to it: `ac.sweep(size_t(tb.note("out")), sw)`.
    void note(std::string name, double value) { notes_[std::move(name)] = value; }
    [[nodiscard]] double note(const std::string& name) const;

    // --- transient lifecycle -----------------------------------------------
    void set_stop_time(const de::time& t) { stop_time_ = t; }
    void set_sample_period(const de::time& p) { sample_period_ = p; }
    [[nodiscard]] const de::time& stop_time() const noexcept { return stop_time_; }
    [[nodiscard]] const de::time& sample_period() const noexcept { return sample_period_; }

    void elaborate();

    /// Transient run for the configured stop time (set_stop_time), recording
    /// all probes at the configured sample period, then evaluating all
    /// measurements.  May be called repeatedly to continue a run.
    void run();
    /// Same, advancing by an explicit duration.
    void run(const de::time& duration);

    // --- results -----------------------------------------------------------
    [[nodiscard]] const util::memory_trace& trace() const noexcept { return trace_; }
    [[nodiscard]] const std::vector<double>& times() const noexcept {
        return trace_.times();
    }
    /// Recorded samples of a named probe.
    [[nodiscard]] std::vector<double> waveform(const std::string& probe_name) const;
    [[nodiscard]] std::vector<std::string> probe_names() const;

    /// Value of a named measurement (valid after run()).
    [[nodiscard]] double measurement(const std::string& name) const;
    [[nodiscard]] const std::map<std::string, double>& measurements() const noexcept {
        return measured_;
    }

    /// Write the recorded probes as a tabular file (t, then one column per
    /// probe) — the quick way for examples to keep emitting waveforms.
    void save_trace(const std::string& path) const;

    // --- checkpoint/restore (core/snapshot) ----------------------------------
    /// Write a full-state snapshot of this testbench to `path` (one SCA1
    /// frame of type wire::msg_type::snapshot_state).  The simulation must
    /// be at a settled point — i.e. run() has returned.  Resume with
    /// scenario::resume(path).
    void snapshot(const std::string& path);

    /// Resume plumbing: replicate exactly what the first run() does before
    /// advancing time — mark the bench as run and attach the probe recorder
    /// process — so process registration order matches the saved context.
    /// Called by core/snapshot's restore path; not useful on its own.
    void attach_trace_for_resume();

    // --- analysis handle ---------------------------------------------------
    /// The continuous-time view (ELN network / LSF system) the frequency- and
    /// static-domain analyses operate on.  With no argument the testbench
    /// must contain exactly one view; with a name, the view with that full
    /// hierarchical name.  Elaborates first, so ac/dc/noise analyses can take
    /// a freshly built testbench.
    [[nodiscard]] tdf::dae_module& view();
    [[nodiscard]] tdf::dae_module& view(const std::string& full_name);

private:
    std::string name_;
    simulation sim_;
    util::object_bag bag_;
    util::memory_trace trace_;
    params params_;
    de::time stop_time_ = de::time::zero();
    de::time sample_period_ = de::time::zero();
    bool trace_attached_ = false;
    bool has_run_ = false;
    std::vector<std::pair<std::string, std::function<double()>>> measurement_defs_;
    std::map<std::string, double> measured_;
    std::map<std::string, double> notes_;
    std::map<std::string, std::function<void(double)>> param_hooks_;
};

// --------------------------------------------------------------- scenario --

/// A named, reusable recipe for building testbenches.  Copyable handle to
/// immutable shared state; building and running testbenches from one
/// scenario on several threads at once is safe.
class scenario {
public:
    using build_fn = std::function<void(testbench&, const params&)>;
    struct impl;  // shared immutable state (definition in scenario.cpp)

    scenario() = default;

    /// Define (or redefine) a scenario and register it by name.
    static scenario define(std::string name, build_fn build);
    static scenario define(std::string name, params defaults, build_fn build);

    /// Look up a previously defined scenario; throws when unknown.
    [[nodiscard]] static scenario find(const std::string& name);

    /// Sorted names of every registered scenario — the service catalog the
    /// streaming server (src/server/) enumerates for clients.
    [[nodiscard]] static std::vector<std::string> names();
    /// Older alias for names().
    [[nodiscard]] static std::vector<std::string> defined_names() { return names(); }

    [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }
    [[nodiscard]] const std::string& name() const;
    [[nodiscard]] const params& defaults() const;

    /// Instantiate a testbench with `overrides` layered on the defaults.
    /// The new testbench's context becomes current on the calling thread.
    [[nodiscard]] std::unique_ptr<testbench> build(const params& overrides = {}) const;

    /// Rebuild a testbench from a snapshot file written by
    /// testbench::snapshot() and overlay the saved state: the returned bench
    /// stands at the saved simulation time, and run(delta) continues
    /// bit-identically with the uninterrupted run.  The snapshot's scenario
    /// must be registered (same name, structurally identical build).
    /// Implemented in core/snapshot.cpp.
    [[nodiscard]] static std::unique_ptr<testbench> resume(const std::string& path);

private:
    explicit scenario(std::shared_ptr<const impl> i) : impl_(std::move(i)) {}

    std::shared_ptr<const impl> impl_;
};

namespace detail {
/// Deterministic per-run seed derivation (splitmix64 of base ^ index).
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept;
}  // namespace detail

}  // namespace sca::core

#endif  // SCA_CORE_SCENARIO_HPP
