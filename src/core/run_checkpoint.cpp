#include "core/run_checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "core/run_protocol.hpp"
#include "util/report.hpp"

namespace sca::core {

namespace {

std::vector<std::uint8_t> encode_fingerprint(const checkpoint_fingerprint& fp) {
    std::vector<std::uint8_t> buf;
    auto put_u64 = [&](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    auto put_u32 = [&](std::uint32_t v) {
        for (int i = 0; i < 4; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    put_u32(static_cast<std::uint32_t>(fp.scenario_name.size()));
    buf.insert(buf.end(), fp.scenario_name.begin(), fp.scenario_name.end());
    put_u64(fp.base_seed);
    put_u64(fp.n_runs);
    buf.push_back(fp.keep_waveforms ? 1 : 0);
    return buf;
}

checkpoint_fingerprint decode_fingerprint(const std::vector<std::uint8_t>& buf) {
    checkpoint_fingerprint fp;
    std::size_t pos = 0;
    auto need = [&](std::size_t n) {
        util::require(buf.size() - pos >= n, "run_checkpoint",
                      "truncated journal header frame");
    };
    auto get_u32 = [&] {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf[pos++]) << (8 * i);
        return v;
    };
    auto get_u64 = [&] {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[pos++]) << (8 * i);
        return v;
    };
    const std::uint32_t name_len = get_u32();
    need(name_len);
    fp.scenario_name.assign(reinterpret_cast<const char*>(buf.data() + pos), name_len);
    pos += name_len;
    fp.base_seed = get_u64();
    fp.n_runs = get_u64();
    need(1);
    fp.keep_waveforms = buf[pos++] != 0;
    return fp;
}

std::vector<std::uint8_t> read_whole_file(const std::string& path, bool& exists) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        util::require(errno == ENOENT, "run_checkpoint",
                      "cannot open journal '" + path + "': " + std::strerror(errno));
        exists = false;
        return {};
    }
    exists = true;
    std::vector<std::uint8_t> bytes;
    std::uint8_t chunk[65536];
    for (;;) {
        const ssize_t r = ::read(fd, chunk, sizeof chunk);
        if (r < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            util::report_fatal("run_checkpoint",
                               "journal read failed: " + std::string(std::strerror(errno)));
        }
        if (r == 0) break;
        bytes.insert(bytes.end(), chunk, chunk + r);
    }
    ::close(fd);
    return bytes;
}

/// Walk a journal byte image: header fingerprint + every following frame
/// (results, warm-start snapshots...), stopping cleanly at a torn tail
/// (partial final append).  Frame types a reader does not understand are
/// simply skipped by its callback — an old loader reads a journal with a
/// snapshot frame without noticing it.
template <typename OnFrame>
checkpoint_fingerprint walk_journal(const std::vector<std::uint8_t>& bytes,
                                    const std::string& path, OnFrame&& on_frame) {
    std::size_t offset = 0;
    wire::frame f;
    util::require(wire::unpack_frame(bytes.data(), bytes.size(), offset, f),
                  "run_checkpoint", "journal '" + path + "' is empty");
    util::require(f.type == wire::msg_type::header, "run_checkpoint",
                  "journal '" + path + "' does not start with a header frame");
    checkpoint_fingerprint fp = decode_fingerprint(f.payload);
    for (;;) {
        const std::size_t record_start = offset;
        try {
            if (!wire::unpack_frame(bytes.data(), bytes.size(), offset, f)) break;
        } catch (const util::error&) {
            // Torn tail: the writer died mid-append.  Everything before this
            // record was flushed whole (frames are appended atomically from
            // the journal's point of view), so drop the tail and resume.
            util::report_warning("run_checkpoint",
                                 "journal '" + path + "' has a torn record at byte " +
                                     std::to_string(record_start) + "; ignoring the tail");
            break;
        }
        on_frame(f);
    }
    return fp;
}

}  // namespace

checkpoint_writer::checkpoint_writer(const std::string& path,
                                     const checkpoint_fingerprint& fp) {
    // Append mode: a resume keeps extending the same journal, so across the
    // whole campaign every completed index appears exactly once.
    const bool fresh = ::access(path.c_str(), F_OK) != 0;
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    util::require(fd_ >= 0, "run_checkpoint",
                  "cannot open journal '" + path + "' for append: " +
                      std::string(std::strerror(errno)));
    if (fresh) {
        util::require(wire::write_frame(fd_, wire::msg_type::header, encode_fingerprint(fp)),
                      "run_checkpoint", "journal header write failed");
    }
}

checkpoint_writer::~checkpoint_writer() {
    if (fd_ >= 0) ::close(fd_);
}

void checkpoint_writer::append(const run_result& r) {
    util::require(wire::write_frame(fd_, wire::msg_type::result, wire::encode_result(r)),
                  "run_checkpoint", "journal append failed");
    ::fsync(fd_);
}

void checkpoint_writer::append_snapshot(const std::vector<std::uint8_t>& snapshot_payload) {
    util::require(
        wire::write_frame(fd_, wire::msg_type::snapshot_state, snapshot_payload),
        "run_checkpoint", "journal snapshot append failed");
    ::fsync(fd_);
}

std::map<std::size_t, run_result> load_checkpoint(const std::string& path,
                                                  const checkpoint_fingerprint& expect) {
    bool exists = false;
    const std::vector<std::uint8_t> bytes = read_whole_file(path, exists);
    if (!exists) return {};
    std::map<std::size_t, run_result> done;
    const checkpoint_fingerprint fp = walk_journal(bytes, path, [&](const wire::frame& f) {
        if (f.type != wire::msg_type::result) return;
        run_result r = wire::decode_result(f.payload.data(), f.payload.size());
        done[r.index] = std::move(r);
    });
    util::require(fp == expect, "run_checkpoint",
                  "journal '" + path + "' was recorded for a different campaign "
                  "(scenario '" + fp.scenario_name + "', seed " +
                      std::to_string(fp.base_seed) + ", " + std::to_string(fp.n_runs) +
                      " runs); refusing to resume from it");
    return done;
}

std::vector<std::uint8_t> load_checkpoint_snapshot(const std::string& path,
                                                   const checkpoint_fingerprint& expect) {
    bool exists = false;
    const std::vector<std::uint8_t> bytes = read_whole_file(path, exists);
    if (!exists) return {};
    std::vector<std::uint8_t> snapshot;
    const checkpoint_fingerprint fp = walk_journal(bytes, path, [&](const wire::frame& f) {
        if (f.type == wire::msg_type::snapshot_state) snapshot = f.payload;
    });
    util::require(fp == expect, "run_checkpoint",
                  "journal '" + path + "' was recorded for a different campaign "
                  "(scenario '" + fp.scenario_name + "', seed " +
                      std::to_string(fp.base_seed) + ", " + std::to_string(fp.n_runs) +
                      " runs); refusing to use its warm-start snapshot");
    return snapshot;
}

std::vector<std::uint64_t> checkpoint_indices(const std::string& path) {
    bool exists = false;
    const std::vector<std::uint8_t> bytes = read_whole_file(path, exists);
    util::require(exists, "run_checkpoint", "journal '" + path + "' does not exist");
    std::vector<std::uint64_t> indices;
    walk_journal(bytes, path, [&](const wire::frame& f) {
        if (f.type != wire::msg_type::result) return;
        indices.push_back(wire::decode_result(f.payload.data(), f.payload.size()).index);
    });
    return indices;
}

}  // namespace sca::core
