// Wire protocol for out-of-process run_set execution: length-prefixed binary
// frames carrying jobs (parent -> worker) and run results (worker -> parent),
// shared verbatim by the fork-based multiprocess backend, the remote-TCP
// worker backend, and the checkpoint journal.
//
// Framing (all integers little-endian regardless of host byte order):
//
//   u32 magic 'SCA1' | u32 payload_len | u8 type | payload | u32 fnv1a(payload)
//
// Doubles travel as their raw IEEE-754 bit pattern (bit_cast to u64), so a
// result decoded on the parent side is byte-exact — NaN payloads, signed
// zeros, infinities and denormals all survive the pipe, which is what keeps
// the multiprocess result table bit-identical to the in-thread one.
//
// Robustness contract (tests/test_run_protocol.cpp): truncated frames,
// payloads above k_max_payload, magic/type/checksum mismatches and short
// payloads all throw sca::util::error instead of yielding garbage.
//
// Session protocol (src/server/): types 5..15 carry the streaming-server
// session traffic over the same 'SCA1' framing.  The numeric values of the
// original run_set frames (1..4) are frozen, so journals and multiprocess
// workers from before the session extension stay byte-compatible; a client
// and server agree on the session dialect through the version byte carried
// by the hello frame (k_session_version) before any other session frame is
// exchanged.
#ifndef SCA_CORE_RUN_PROTOCOL_HPP
#define SCA_CORE_RUN_PROTOCOL_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/run_set.hpp"
#include "util/telemetry.hpp"

namespace sca::core::wire {

/// Frame header magic ('SCA1' little-endian).
inline constexpr std::uint32_t k_magic = 0x31414353U;

/// Upper bound on a frame payload (rejects corrupt/hostile length prefixes
/// before any allocation happens).
inline constexpr std::uint32_t k_max_payload = 256U * 1024U * 1024U;

/// Version of the session dialect (frame types >= hello).  Negotiated once
/// per connection: the client's hello carries the version it speaks, the
/// server answers with the version it accepted or an error frame.
/// v2 adds the stats frame (periodic/on-request in-band session telemetry)
/// and extends the close reply with max_queue_depth and the slice count.
inline constexpr std::uint8_t k_session_version = 2;

enum class msg_type : std::uint8_t {
    job = 1,       ///< parent -> worker: u64 run index
    result = 2,    ///< worker -> parent: encoded run_result
    shutdown = 3,  ///< parent -> worker: finish and exit (empty payload)
    header = 4,    ///< checkpoint journal only: campaign fingerprint

    // --- session protocol (version byte: k_session_version via hello) ------
    hello = 5,      ///< both ways: u8 session protocol version
    catalog = 6,    ///< request (empty) / reply (scenario names + defaults)
    open = 7,       ///< client -> server: scenario name + params + slice
    opened = 8,     ///< server -> client: session id, probes, timing
    param = 9,      ///< client -> server: live poke {name, value}
    subscribe = 10, ///< client -> server: probe name + on/off
    samples = 11,   ///< server -> client: framed waveform batch
    pace = 12,      ///< both ways: wall-clock pacing factor (+ drift in reply)
    run_state = 13, ///< client -> server: u8 0 = pause, 1 = resume
    close = 14,     ///< request (empty) / reply (final session statistics)
    error = 15,     ///< server -> client: diagnostic message

    // --- full-state snapshots (core/snapshot) ------------------------------
    snapshot_state = 16,  ///< snapshot file / journal: full simulation state

    // --- telemetry (session v2 / run_set metrics) --------------------------
    stats = 17,    ///< session: request (empty) / reply or periodic push
    metrics = 18,  ///< worker -> parent: per-run metrics (precedes result)
};

/// Largest assigned frame type (frame validation bound).
inline constexpr std::uint8_t k_max_msg_type = 18;

/// One decoded frame.
struct frame {
    msg_type type = msg_type::shutdown;
    std::vector<std::uint8_t> payload;
};

/// FNV-1a over the payload — cheap torn-write/corruption detection for the
/// checkpoint journal and a sanity check on sockets.
[[nodiscard]] std::uint32_t fnv1a(const std::uint8_t* data, std::size_t n) noexcept;

// -------------------------------------------------------- encode / decode --

[[nodiscard]] std::vector<std::uint8_t> encode_job(std::uint64_t index);
[[nodiscard]] std::uint64_t decode_job(const std::uint8_t* data, std::size_t n);

[[nodiscard]] std::vector<std::uint8_t> encode_result(const run_result& r);
[[nodiscard]] run_result decode_result(const std::uint8_t* data, std::size_t n);

[[nodiscard]] std::vector<std::uint8_t> encode_params(const params& p);
[[nodiscard]] params decode_params(const std::uint8_t* data, std::size_t n);

// ------------------------------------------------- session protocol types --

/// One service-catalog row: a registered scenario and its default parameters.
struct catalog_entry {
    std::string name;
    params defaults;
};

/// Client request to instantiate a scenario as a live session.
struct open_request {
    std::string scenario;
    params overrides;
    std::uint64_t slice_us = 0;  ///< kernel slice bound; 0 = server default
};

/// Server reply to a successful open: the session identity and everything a
/// client needs to subscribe (probe names) and interpret the stream.
struct session_info {
    std::uint64_t session_id = 0;
    double stop_time_s = 0.0;
    double sample_period_s = 0.0;
    std::vector<std::string> probes;
};

/// Live parameter poke, applied between kernel slices through the scenario's
/// testbench::on_param hooks.
struct param_poke {
    std::string name;
    double value = 0.0;
};

struct subscribe_request {
    std::string probe;
    bool on = true;
};

/// One streamed waveform batch.  `first_index` is the absolute sample index
/// of times[0]/values[0] within the session's probe record, so a client can
/// detect (and size) gaps left by backpressure drops; `dropped` is the
/// cumulative count of samples dropped on this subscription so far.
struct sample_batch {
    std::string probe;
    std::uint64_t first_index = 0;
    std::uint64_t dropped = 0;
    std::vector<double> times;
    std::vector<double> values;
};

/// Pacing control/status.  The client sends the factor it wants (drift
/// fields ignored); the server's reply echoes the factor and reports the
/// drift measured so far.
struct pace_info {
    double real_time_factor = 0.0;  ///< <= 0 disables pacing
    double drift_s = 0.0;
    double max_drift_s = 0.0;
};

/// Why a session ended (close reply).
enum class close_reason : std::uint8_t {
    client_request = 0,  ///< client sent close
    finished = 1,        ///< simulation reached its stop time
    failed = 2,          ///< session error (message went out as an error frame)
};

/// Final session statistics, sent as the close reply.  This is the
/// authoritative end-of-session telemetry: streamed/dropped totals, the
/// deepest the stream queue ever got, pacing drift extremes, and the number
/// of kernel slices the session executed.
struct close_info {
    close_reason reason = close_reason::client_request;
    double sim_time_s = 0.0;
    std::uint64_t samples_streamed = 0;
    std::uint64_t samples_dropped = 0;
    double pace_drift_s = 0.0;
    double pace_max_drift_s = 0.0;
    std::uint64_t max_queue_depth = 0;  ///< session v2
    std::uint64_t slices = 0;           ///< session v2
    std::map<std::string, double> measurements;
};

/// In-band session telemetry: pushed every options.stats_every_slices kernel
/// slices while streaming, and on demand as the reply to an (empty) stats
/// request.  Counts are cumulative for the session.
struct stats_info {
    double sim_time_s = 0.0;
    std::uint64_t slices = 0;
    std::uint64_t samples_streamed = 0;
    std::uint64_t samples_dropped = 0;
    std::uint64_t queue_depth = 0;      ///< batches queued right now
    std::uint64_t max_queue_depth = 0;  ///< deepest the queue has been
    double pace_drift_s = 0.0;
    double pace_max_drift_s = 0.0;
};

/// Per-run telemetry attached to a run_result: the deterministic
/// counter/gauge subset of the worker context's registry (sorted by name),
/// sent as its own frame immediately before the result frame so journals and
/// old parents that ignore it stay compatible.
struct run_metrics {
    std::uint64_t index = 0;  ///< run index the metrics belong to
    util::metrics_snapshot entries;
};

[[nodiscard]] std::vector<std::uint8_t> encode_hello(std::uint8_t version);
[[nodiscard]] std::uint8_t decode_hello(const std::uint8_t* data, std::size_t n);

[[nodiscard]] std::vector<std::uint8_t> encode_catalog(
    const std::vector<catalog_entry>& entries);
[[nodiscard]] std::vector<catalog_entry> decode_catalog(const std::uint8_t* data,
                                                        std::size_t n);

[[nodiscard]] std::vector<std::uint8_t> encode_open(const open_request& req);
[[nodiscard]] open_request decode_open(const std::uint8_t* data, std::size_t n);

[[nodiscard]] std::vector<std::uint8_t> encode_opened(const session_info& info);
[[nodiscard]] session_info decode_opened(const std::uint8_t* data, std::size_t n);

[[nodiscard]] std::vector<std::uint8_t> encode_poke(const param_poke& poke);
[[nodiscard]] param_poke decode_poke(const std::uint8_t* data, std::size_t n);

[[nodiscard]] std::vector<std::uint8_t> encode_subscribe(const subscribe_request& req);
[[nodiscard]] subscribe_request decode_subscribe(const std::uint8_t* data, std::size_t n);

[[nodiscard]] std::vector<std::uint8_t> encode_samples(const sample_batch& batch);
[[nodiscard]] sample_batch decode_samples(const std::uint8_t* data, std::size_t n);

[[nodiscard]] std::vector<std::uint8_t> encode_pace(const pace_info& info);
[[nodiscard]] pace_info decode_pace(const std::uint8_t* data, std::size_t n);

[[nodiscard]] std::vector<std::uint8_t> encode_run_state(bool running);
[[nodiscard]] bool decode_run_state(const std::uint8_t* data, std::size_t n);

[[nodiscard]] std::vector<std::uint8_t> encode_close(const close_info& info);
[[nodiscard]] close_info decode_close(const std::uint8_t* data, std::size_t n);

[[nodiscard]] std::vector<std::uint8_t> encode_error(const std::string& message);
[[nodiscard]] std::string decode_error(const std::uint8_t* data, std::size_t n);

[[nodiscard]] std::vector<std::uint8_t> encode_stats(const stats_info& info);
[[nodiscard]] stats_info decode_stats(const std::uint8_t* data, std::size_t n);

[[nodiscard]] std::vector<std::uint8_t> encode_metrics(const run_metrics& m);
[[nodiscard]] run_metrics decode_metrics(const std::uint8_t* data, std::size_t n);

/// Serialize a full frame (header + payload + checksum) into a byte buffer —
/// what write_frame() puts on the wire and the journal appends to disk.
[[nodiscard]] std::vector<std::uint8_t> pack_frame(msg_type type,
                                                   const std::vector<std::uint8_t>& payload);

/// Parse one frame from `data`; advances `offset` past it.  Returns false on
/// a clean end (no bytes left), throws on truncation/corruption.
bool unpack_frame(const std::uint8_t* data, std::size_t size, std::size_t& offset,
                  frame& out);

/// Size in bytes of the complete frame starting at data[0], parsing only the
/// header: 0 when fewer than the 9 header bytes are available yet ("read
/// more"), the full frame length otherwise.  Validates magic and length so a
/// server can reject a garbage stream before buffering k_max_payload bytes.
/// This is what lets a non-blocking reader distinguish "frame still in
/// flight" (wait) from "frame torn/corrupt" (throw) — unpack_frame alone
/// treats both as truncation.
[[nodiscard]] std::size_t frame_size_hint(const std::uint8_t* data, std::size_t size);

// ------------------------------------------------------------- fd framing --

/// Write a frame to a socket/pipe fd (retries short writes, suppresses
/// SIGPIPE).  Returns false when the peer is gone (EPIPE/ECONNRESET), throws
/// on other I/O errors.
bool write_frame(int fd, msg_type type, const std::vector<std::uint8_t>& payload);

/// Read one frame from a blocking fd.  Returns false on clean EOF before any
/// header byte; throws on mid-frame EOF, bad magic, oversized payload, or
/// checksum mismatch.
bool read_frame(int fd, frame& out);

}  // namespace sca::core::wire

#endif  // SCA_CORE_RUN_PROTOCOL_HPP
