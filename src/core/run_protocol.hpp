// Wire protocol for out-of-process run_set execution: length-prefixed binary
// frames carrying jobs (parent -> worker) and run results (worker -> parent),
// shared verbatim by the fork-based multiprocess backend, the remote-TCP
// worker backend, and the checkpoint journal.
//
// Framing (all integers little-endian regardless of host byte order):
//
//   u32 magic 'SCA1' | u32 payload_len | u8 type | payload | u32 fnv1a(payload)
//
// Doubles travel as their raw IEEE-754 bit pattern (bit_cast to u64), so a
// result decoded on the parent side is byte-exact — NaN payloads, signed
// zeros, infinities and denormals all survive the pipe, which is what keeps
// the multiprocess result table bit-identical to the in-thread one.
//
// Robustness contract (tests/test_run_protocol.cpp): truncated frames,
// payloads above k_max_payload, magic/type/checksum mismatches and short
// payloads all throw sca::util::error instead of yielding garbage.
#ifndef SCA_CORE_RUN_PROTOCOL_HPP
#define SCA_CORE_RUN_PROTOCOL_HPP

#include <cstdint>
#include <vector>

#include "core/run_set.hpp"

namespace sca::core::wire {

/// Frame header magic ('SCA1' little-endian).
inline constexpr std::uint32_t k_magic = 0x31414353U;

/// Upper bound on a frame payload (rejects corrupt/hostile length prefixes
/// before any allocation happens).
inline constexpr std::uint32_t k_max_payload = 256U * 1024U * 1024U;

enum class msg_type : std::uint8_t {
    job = 1,       ///< parent -> worker: u64 run index
    result = 2,    ///< worker -> parent: encoded run_result
    shutdown = 3,  ///< parent -> worker: finish and exit (empty payload)
    header = 4,    ///< checkpoint journal only: campaign fingerprint
};

/// One decoded frame.
struct frame {
    msg_type type = msg_type::shutdown;
    std::vector<std::uint8_t> payload;
};

/// FNV-1a over the payload — cheap torn-write/corruption detection for the
/// checkpoint journal and a sanity check on sockets.
[[nodiscard]] std::uint32_t fnv1a(const std::uint8_t* data, std::size_t n) noexcept;

// -------------------------------------------------------- encode / decode --

[[nodiscard]] std::vector<std::uint8_t> encode_job(std::uint64_t index);
[[nodiscard]] std::uint64_t decode_job(const std::uint8_t* data, std::size_t n);

[[nodiscard]] std::vector<std::uint8_t> encode_result(const run_result& r);
[[nodiscard]] run_result decode_result(const std::uint8_t* data, std::size_t n);

[[nodiscard]] std::vector<std::uint8_t> encode_params(const params& p);
[[nodiscard]] params decode_params(const std::uint8_t* data, std::size_t n);

/// Serialize a full frame (header + payload + checksum) into a byte buffer —
/// what write_frame() puts on the wire and the journal appends to disk.
[[nodiscard]] std::vector<std::uint8_t> pack_frame(msg_type type,
                                                   const std::vector<std::uint8_t>& payload);

/// Parse one frame from `data`; advances `offset` past it.  Returns false on
/// a clean end (no bytes left), throws on truncation/corruption.
bool unpack_frame(const std::uint8_t* data, std::size_t size, std::size_t& offset,
                  frame& out);

// ------------------------------------------------------------- fd framing --

/// Write a frame to a socket/pipe fd (retries short writes, suppresses
/// SIGPIPE).  Returns false when the peer is gone (EPIPE/ECONNRESET), throws
/// on other I/O errors.
bool write_frame(int fd, msg_type type, const std::vector<std::uint8_t>& payload);

/// Read one frame from a blocking fd.  Returns false on clean EOF before any
/// header byte; throws on mid-frame EOF, bad magic, oversized payload, or
/// checksum mismatch.
bool read_frame(int fd, frame& out);

}  // namespace sca::core::wire

#endif  // SCA_CORE_RUN_PROTOCOL_HPP
