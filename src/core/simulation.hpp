// The single-run simulation driver: owns one kernel context, provides the
// build / elaborate / run lifecycle, and hosts waveform tracing.
//
//   sca::core::simulation sim;
//   my_top top("top");                  // modules register with sim's context
//   sim.trace(file, sca::de::time(1.0, sca::de::time_unit::us));
//   file.add_channel("vout", sca::core::probe(vout_signal));
//   sim.run(sca::de::time(10.0, sca::de::time_unit::ms));
//
// This is the thin compatibility facade underneath the scenario front end
// (core/scenario.hpp): a testbench owns a simulation, and reusable scenario
// definitions plus core/run_set add typed parameters, probes/measurements,
// and parallel multi-run execution on top.  New code should prefer
// scenario/testbench; this class stays for imperative one-shot drivers.
#ifndef SCA_CORE_SIMULATION_HPP
#define SCA_CORE_SIMULATION_HPP

#include <functional>
#include <memory>

#include "kernel/context.hpp"
#include "kernel/signal.hpp"
#include "tdf/port.hpp"
#include "util/trace.hpp"

namespace sca::core {

class simulation {
public:
    /// Creates a fresh simulation context and makes it current, so model
    /// construction after this point lands in this simulation.
    simulation();
    ~simulation();

    simulation(const simulation&) = delete;
    simulation& operator=(const simulation&) = delete;

    [[nodiscard]] de::simulation_context& context() noexcept { return *ctx_; }

    /// Bind ports, build TDF clusters, compute schedules. Idempotent.
    void elaborate() { ctx_->elaborate(); }

    /// Advance simulated time.
    void run(const de::time& duration) { ctx_->run(duration); }
    void run_seconds(double seconds) { ctx_->run(de::time::from_seconds(seconds)); }

    [[nodiscard]] de::time now() const noexcept { return ctx_->now(); }

    /// Attach a trace file sampled every `period`; channels are added by the
    /// caller on the file before the run starts.
    void trace(util::trace_file& file, const de::time& period);

private:
    std::unique_ptr<de::simulation_context> ctx_;
};

/// Probe helpers for trace channels.
[[nodiscard]] std::function<double()> probe(const de::signal<double>& s);
[[nodiscard]] std::function<double()> probe(const de::signal<bool>& s);
[[nodiscard]] std::function<double()> probe(const tdf::signal<double>& s);

}  // namespace sca::core

#endif  // SCA_CORE_SIMULATION_HPP
