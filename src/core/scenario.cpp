#include "core/scenario.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "tdf/dae_module.hpp"

namespace sca::core {

// ----------------------------------------------------------------- params --

double params::get(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    util::require(std::holds_alternative<double>(it->second), "params",
                  "parameter '" + name + "' is not numeric");
    return std::get<double>(it->second);
}

std::string params::get(const std::string& name, const std::string& fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    util::require(std::holds_alternative<std::string>(it->second), "params",
                  "parameter '" + name + "' is not a string");
    return std::get<std::string>(it->second);
}

double params::number(const std::string& name) const {
    util::require(has(name), "params", "missing required parameter '" + name + "'");
    return get(name, 0.0);
}

std::string params::text(const std::string& name) const {
    util::require(has(name), "params", "missing required parameter '" + name + "'");
    return get(name, std::string());
}

params params::merged_onto(const params& defaults) const {
    params out = defaults;
    for (const auto& [name, v] : values_) out.values_[name] = v;
    out.run_index_ = run_index_;
    out.seed_ = seed_;
    return out;
}

// -------------------------------------------------------------- testbench --

testbench::testbench(std::string name) : name_(std::move(name)) {}

testbench::~testbench() {
    // Model objects must unregister from a live context: activate ours (the
    // thread may have another testbench current) and drop them explicitly
    // before the members' natural teardown reaches sim_.
    activate();
    bag_.clear();
}

void testbench::probe(std::string name, std::function<double()> fn) {
    // The recorder process arms at the first run's initialization phase, so
    // later probes could never fire — reject them instead of losing data.
    util::require(!has_run_, "testbench", "probes must be added before the first run");
    trace_.add_channel(std::move(name), std::move(fn));
}

void testbench::measure(std::string name, std::function<double()> fn) {
    measurement_defs_.emplace_back(std::move(name), std::move(fn));
}

void testbench::on_param(std::string name, std::function<void(double)> apply) {
    util::require(static_cast<bool>(apply), "testbench", "param hook must be callable");
    param_hooks_[std::move(name)] = std::move(apply);
}

void testbench::poke(const std::string& name, double value) {
    auto it = param_hooks_.find(name);
    util::require(it != param_hooks_.end(), "testbench",
                  "no param hook registered for '" + name + "'");
    activate();
    it->second(value);
}

std::vector<std::string> testbench::param_names() const {
    std::vector<std::string> names;
    names.reserve(param_hooks_.size());
    for (const auto& [name, fn] : param_hooks_) names.push_back(name);
    return names;
}

double testbench::note(const std::string& name) const {
    auto it = notes_.find(name);
    util::require(it != notes_.end(), "testbench", "unknown note '" + name + "'");
    return it->second;
}

void testbench::elaborate() {
    activate();
    sim_.elaborate();
}

void testbench::run() {
    util::require(stop_time_ > de::time::zero(), "testbench",
                  "set_stop_time before run(), or pass an explicit duration");
    run(stop_time_);
}

void testbench::run(const de::time& duration) {
    activate();
    has_run_ = true;
    if (!trace_attached_ && trace_.channel_count() > 0) {
        util::require(sample_period_ > de::time::zero(), "testbench",
                      "set_sample_period before running with probes");
        sim_.trace(trace_, sample_period_);
        trace_attached_ = true;
    }
    sim_.run(duration);
    measured_.clear();
    for (const auto& [name, fn] : measurement_defs_) measured_[name] = fn();
}

void testbench::attach_trace_for_resume() {
    activate();
    has_run_ = true;
    if (!trace_attached_ && trace_.channel_count() > 0) {
        util::require(sample_period_ > de::time::zero(), "testbench",
                      "set_sample_period before running with probes");
        sim_.trace(trace_, sample_period_);
        trace_attached_ = true;
    }
}

std::vector<double> testbench::waveform(const std::string& probe_name) const {
    for (std::size_t c = 0; c < trace_.channel_count(); ++c) {
        if (trace_.channel_name(c) == probe_name) return trace_.column(c);
    }
    util::report_fatal("testbench", "unknown probe '" + probe_name + "'");
}

std::vector<std::string> testbench::probe_names() const {
    std::vector<std::string> names;
    names.reserve(trace_.channel_count());
    for (std::size_t c = 0; c < trace_.channel_count(); ++c) {
        names.push_back(trace_.channel_name(c));
    }
    return names;
}

double testbench::measurement(const std::string& name) const {
    auto it = measured_.find(name);
    util::require(it != measured_.end(), "testbench",
                  "unknown measurement '" + name + "' (did the run finish?)");
    return it->second;
}

void testbench::save_trace(const std::string& path) const {
    util::tabular_trace_file out(path);
    for (std::size_t c = 0; c < trace_.channel_count(); ++c) {
        out.add_channel(trace_.channel_name(c), [] { return 0.0; });
    }
    const auto& times = trace_.times();
    const auto& rows = trace_.rows();
    for (std::size_t i = 0; i < times.size(); ++i) out.replay_row(times[i], rows[i]);
    out.close();
}

tdf::dae_module& testbench::view() {
    elaborate();
    tdf::dae_module* found = nullptr;
    for (de::object* o : context().objects()) {
        if (auto* v = dynamic_cast<tdf::dae_module*>(o)) {
            util::require(found == nullptr, "testbench",
                          "several continuous-time views exist; use view(name)");
            found = v;
        }
    }
    util::require(found != nullptr, "testbench", "no continuous-time view in testbench");
    return *found;
}

tdf::dae_module& testbench::view(const std::string& full_name) {
    elaborate();
    de::object* o = context().find_object(full_name);
    util::require(o != nullptr, "testbench", "no object named '" + full_name + "'");
    auto* v = dynamic_cast<tdf::dae_module*>(o);
    util::require(v != nullptr, "testbench",
                  "'" + full_name + "' is not a continuous-time view");
    return *v;
}

// --------------------------------------------------------------- scenario --

struct scenario::impl {
    std::string name;
    params defaults;
    build_fn build;
};

namespace {
std::mutex& registry_mutex() {
    static std::mutex m;
    return m;
}
std::unordered_map<std::string, std::shared_ptr<const scenario::impl>>& registry() {
    static std::unordered_map<std::string, std::shared_ptr<const scenario::impl>> reg;
    return reg;
}
}  // namespace

scenario scenario::define(std::string name, build_fn build) {
    return define(std::move(name), params{}, std::move(build));
}

scenario scenario::define(std::string name, params defaults, build_fn build) {
    util::require(static_cast<bool>(build), "scenario", "build function must be set");
    auto i = std::make_shared<const impl>(
        impl{std::move(name), std::move(defaults), std::move(build)});
    {
        std::lock_guard<std::mutex> lock(registry_mutex());
        registry()[i->name] = i;  // redefinition replaces (tests, notebooks)
    }
    return scenario(std::move(i));
}

scenario scenario::find(const std::string& name) {
    std::lock_guard<std::mutex> lock(registry_mutex());
    auto it = registry().find(name);
    util::require(it != registry().end(), "scenario", "no scenario named '" + name + "'");
    return scenario(it->second);
}

std::vector<std::string> scenario::names() {
    std::lock_guard<std::mutex> lock(registry_mutex());
    std::vector<std::string> names;
    names.reserve(registry().size());
    for (const auto& [name, i] : registry()) names.push_back(name);
    std::sort(names.begin(), names.end());
    return names;
}

const std::string& scenario::name() const {
    util::require(impl_ != nullptr, "scenario", "empty scenario handle");
    return impl_->name;
}

const params& scenario::defaults() const {
    util::require(impl_ != nullptr, "scenario", "empty scenario handle");
    return impl_->defaults;
}

std::unique_ptr<testbench> scenario::build(const params& overrides) const {
    util::require(impl_ != nullptr, "scenario", "empty scenario handle");
    auto tb = std::make_unique<testbench>(impl_->name);
    params merged = overrides.merged_onto(impl_->defaults);
    tb->set_parameters(merged);
    impl_->build(*tb, tb->parameters());
    return tb;
}

namespace detail {
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept {
    std::uint64_t x = base ^ (index + 1);
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}
}  // namespace detail

}  // namespace sca::core
