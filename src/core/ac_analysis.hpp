// Frequency-domain analysis driver over any continuous-time view (ELN
// network or LSF system): small-signal AC sweeps with magnitude/phase
// reporting (paper phase 1/2: "small-signal AC" and "frequency-domain
// simulation").
#ifndef SCA_CORE_AC_ANALYSIS_HPP
#define SCA_CORE_AC_ANALYSIS_HPP

#include <complex>
#include <string>
#include <vector>

#include "solver/ac.hpp"
#include "tdf/dae_module.hpp"
#include "util/trace.hpp"

namespace sca::core {

struct ac_point {
    double frequency;
    std::complex<double> value;
    [[nodiscard]] double magnitude_db() const { return solver::magnitude_db(value); }
    [[nodiscard]] double phase_deg() const { return solver::phase_deg(value); }
};

class testbench;

class ac_analysis {
public:
    /// The view's equations are assembled on construction. For nonlinear
    /// views pass the DC operating point explicitly.
    explicit ac_analysis(tdf::dae_module& view);
    ac_analysis(tdf::dae_module& view, std::vector<double> dc_operating_point);

    /// Analyse the testbench's continuous-time view (elaborating first), so
    /// one scenario-built model serves DC, AC, noise, and transient runs.
    explicit ac_analysis(testbench& tb);
    ac_analysis(testbench& tb, const std::string& view_name);

    /// Sweep the response of unknown `output` (eln node.index(), lsf
    /// signal.index(), or any branch row).
    [[nodiscard]] std::vector<ac_point> sweep(std::size_t output,
                                              const solver::sweep& sw) const;

    /// Write a sweep as rows (frequency, magnitude_db, phase_deg).
    static void write(const std::vector<ac_point>& points, util::trace_file& file);

private:
    tdf::dae_module* view_;
    std::vector<double> dc_;
    bool have_dc_ = false;
};

/// Small-signal response of a cascade of TDF modules that carry
/// frequency-domain models (paper §4 [6]: mixed-signal frequency-domain
/// simulation "provided frequency-domain models are added to the
/// discrete-time components").  Throws if any module lacks a model.
[[nodiscard]] std::vector<ac_point> tdf_cascade_response(
    const std::vector<const tdf::module*>& chain, const solver::sweep& sw);

}  // namespace sca::core

#endif  // SCA_CORE_AC_ANALYSIS_HPP
