// One live client session of the streaming simulation server: a registered
// scenario instantiated in its own simulation_context and stepped on a
// dedicated worker thread in bounded sim-time slices, so control frames
// (pause/resume, live parameter pokes, subscribe/unsubscribe, pacing,
// teardown) interleave with kernel execution at slice granularity.
//
// Thread contract: the server's I/O thread calls enqueue()/request_stop()
// and drains out(); everything that touches the testbench — building it,
// stepping the kernel, applying pokes, reading the trace — happens on this
// session's worker thread only.  Per-session isolation is the PR-3 contract:
// each testbench owns an independent simulation_context, thread-local
// current-context and report stores keep concurrent sessions from sharing
// mutable state.
#ifndef SCA_SERVER_SESSION_HPP
#define SCA_SERVER_SESSION_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "core/run_protocol.hpp"
#include "kernel/time.hpp"
#include "server/stream_queue.hpp"

namespace sca::core {
class testbench;
}

namespace sca::server {

class session {
public:
    struct config {
        std::uint64_t id = 0;
        de::time slice;  ///< kernel advance per control poll (bounded latency)
        std::size_t queue_capacity = 1024;    ///< outbound frames before dropping
        std::size_t max_batch_samples = 512;  ///< samples per streamed frame
        std::uint64_t stats_every_slices = 64;  ///< periodic stats push (0 = off)
        std::function<void()> wake;           ///< notify the I/O thread: frames queued
    };

    session(config cfg, core::wire::open_request req);
    ~session();  // request_stop + join

    session(const session&) = delete;
    session& operator=(const session&) = delete;

    /// Spawn the worker thread (build, elaborate, announce, step).
    void start();

    /// Hand a decoded control frame (param/subscribe/pace/run_state/close)
    /// to the worker; applied between kernel slices.
    void enqueue(core::wire::frame f);

    /// Abandon the session (client disconnected, server stopping): the
    /// worker exits after its current slice without sending further frames.
    void request_stop();

    void join();

    [[nodiscard]] stream_queue& out() noexcept { return out_; }
    [[nodiscard]] std::uint64_t id() const noexcept { return cfg_.id; }
    [[nodiscard]] bool finished() const noexcept {
        return finished_.load(std::memory_order_acquire);
    }

    // --- statistics (readable from any thread) -----------------------------
    [[nodiscard]] std::uint64_t samples_streamed() const noexcept {
        return streamed_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t samples_dropped() const noexcept {
        return dropped_.load(std::memory_order_relaxed);
    }
    /// Kernel slices executed so far (one per bounded run() advance).
    [[nodiscard]] std::uint64_t slices() const noexcept {
        return slices_.load(std::memory_order_relaxed);
    }

private:
    struct subscription {
        std::size_t column = 0;       ///< trace channel index
        std::uint64_t next = 0;       ///< next sample index to stream
        std::uint64_t dropped = 0;    ///< samples lost to backpressure
    };

    void worker_body();
    void handle_command(const core::wire::frame& f, core::testbench& tb);
    void stream_new_rows(core::testbench& tb);
    void send_close(core::wire::close_reason reason, core::testbench* tb);
    void send_error(const std::string& message);
    void send_stats(core::testbench& tb);
    void wake();

    config cfg_;
    core::wire::open_request req_;
    stream_queue out_;
    std::thread worker_;

    std::mutex command_mutex_;
    std::condition_variable command_cv_;
    std::deque<core::wire::frame> commands_;
    bool stop_requested_ = false;  // guarded by command_mutex_

    // Worker-local state (no locking: only worker_body touches these).
    std::map<std::string, subscription> subs_;
    // Sessions open paused: the kernel does not advance until the client
    // sends run_state(running).  TCP ordering then guarantees that every
    // configuration frame sent before the start command (subscriptions,
    // pokes, pacing) is applied before the first slice — no race between
    // the client's setup burst and a fast simulation.
    bool paused_ = true;
    bool close_requested_ = false;

    std::atomic<bool> finished_{false};
    std::atomic<std::uint64_t> streamed_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> slices_{0};
};

}  // namespace sca::server

#endif  // SCA_SERVER_SESSION_HPP
