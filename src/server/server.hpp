// Simulation-as-a-service front end: a long-lived, session-multiplexed
// streaming server on top of the scenario registry (the service catalog),
// the 'SCA1' wire protocol (core/run_protocol), and per-context isolation
// (core/scenario).
//
//   sca::server::sim_server srv;           // 127.0.0.1, ephemeral port
//   srv.start();
//   auto cl = sca::server::client::connect_tcp("127.0.0.1", srv.port());
//   cl.hello();
//   auto info = cl.open("adaptive_receiver", {{"adaptive", 1.0}});
//   cl.subscribe(info.probes.front());
//   cl.pace(10.0);                          // 10x faster than real time
//   auto stats = cl.drain();                // stream until the run finishes
//
// Architecture: one poll()-driven I/O thread owns every socket — the TCP
// and AF_UNIX listeners and all connected clients — and never simulates;
// each open session steps its kernel on a dedicated worker thread in
// bounded sim-time slices (session.hpp).  Worker -> I/O hand-off is a
// bounded per-session frame queue (stream_queue.hpp) plus a self-pipe wake;
// a slow client therefore drops sample batches (counted, reported) instead
// of ever stalling a kernel — and a stalled client cannot stall the I/O
// thread either, because client sockets are non-blocking with a bounded
// outbound buffer.
#ifndef SCA_SERVER_SERVER_HPP
#define SCA_SERVER_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/run_protocol.hpp"
#include "kernel/time.hpp"

namespace sca::server {

class session;

class sim_server {
public:
    struct options {
        bool tcp = true;              ///< listen on 127.0.0.1 (port below)
        std::uint16_t port = 0;       ///< 0 = ephemeral; see port() after start()
        std::string unix_path;        ///< AF_UNIX listener when non-empty
        de::time default_slice = de::time(1.0, de::time_unit::ms);
        std::size_t queue_capacity = 1024;    ///< outbound frames per session
        std::size_t max_batch_samples = 512;  ///< samples per streamed frame
        /// Push a stats frame every N kernel slices (0 disables the periodic
        /// push; clients can still request one with client::stats()).
        std::uint64_t stats_every_slices = 64;
    };

    sim_server() : sim_server(options{}) {}
    explicit sim_server(options opt);
    ~sim_server();  // stop()

    sim_server(const sim_server&) = delete;
    sim_server& operator=(const sim_server&) = delete;

    /// Bind the listeners and spawn the I/O thread.
    void start();

    /// Tear everything down: abandon open sessions (their workers exit after
    /// the current slice), close every socket, join the I/O thread.
    void stop();

    /// Bound TCP port (valid after start() when options.tcp).
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    // --- statistics ---------------------------------------------------------
    [[nodiscard]] std::uint64_t sessions_opened() const noexcept {
        return sessions_opened_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t active_sessions() const noexcept {
        return active_sessions_.load(std::memory_order_relaxed);
    }
    /// Sessions whose kernel worker has run to completion (the close frame
    /// may still be queued) — lets tests and monitors wait for quiescence
    /// without guessing at sleep durations.
    [[nodiscard]] std::uint64_t finished_sessions() const noexcept {
        return finished_sessions_.load(std::memory_order_relaxed);
    }

private:
    struct connection;

    void io_body();
    void accept_clients(int listen_fd, bool tcp);
    void on_readable(connection& c);
    void handle_frame(connection& c, const core::wire::frame& f);
    void queue_reply(connection& c, core::wire::msg_type type,
                     const std::vector<std::uint8_t>& payload);
    void pump_outbound(connection& c);
    [[nodiscard]] bool flush(connection& c);  // false = peer gone
    void destroy_connection(std::size_t index);
    void wake() const;

    options opt_;
    std::uint16_t port_ = 0;
    int listen_tcp_fd_ = -1;
    int listen_unix_fd_ = -1;
    int wake_read_fd_ = -1;
    int wake_write_fd_ = -1;
    std::thread io_;
    bool started_ = false;
    std::atomic<bool> stop_requested_{false};
    std::atomic<std::uint64_t> sessions_opened_{0};
    std::atomic<std::uint64_t> active_sessions_{0};
    std::atomic<std::uint64_t> finished_sessions_{0};
    std::uint64_t next_session_id_ = 1;  // I/O thread only
    std::vector<std::unique_ptr<connection>> conns_;  // I/O thread only
};

// ----------------------------------------------------------------- client --

/// Minimal blocking client for the session protocol — what tests, benches
/// and hardware-in-the-loop front ends use to talk to a sim_server.  One
/// instance drives one session; not thread-safe.
class client {
public:
    client() = default;
    ~client();

    client(client&& other) noexcept;
    client& operator=(client&& other) noexcept;
    client(const client&) = delete;
    client& operator=(const client&) = delete;

    [[nodiscard]] static client connect_tcp(const std::string& host, std::uint16_t port);
    [[nodiscard]] static client connect_unix(const std::string& path);

    /// Version handshake; returns the server's session protocol version.
    std::uint8_t hello();

    /// The server's scenario catalog (names + default parameters).
    [[nodiscard]] std::vector<core::wire::catalog_entry> catalog();

    /// Open a session and start it immediately: open_async + await_opened +
    /// resume.  Throws sca::util::error when the server reports a failure.
    core::wire::session_info open(const std::string& scenario,
                                  const core::params& overrides = {},
                                  std::uint64_t slice_us = 0);

    /// Send the open request without waiting for the reply.  Sessions open
    /// paused: the kernel does not advance until resume() — so every
    /// configuration frame (subscribe/pace/poke) sent before resume() is
    /// applied before the first kernel slice, guaranteed by TCP ordering.
    /// This is the race-free way to configure a session that streams from
    /// t=0: open_async, configure, await_opened(), resume().
    void open_async(const std::string& scenario, const core::params& overrides = {},
                    std::uint64_t slice_us = 0);
    /// Block until the opened reply for a preceding open_async().
    core::wire::session_info await_opened();

    void subscribe(const std::string& probe, bool on = true);
    void poke(const std::string& name, double value);
    void pace(double real_time_factor);
    void pause();
    void resume();
    /// Request an immediate stats frame (the session also pushes one every
    /// options::stats_every_slices slices); the reply arrives in-stream and
    /// is absorbed into last_stats().
    void stats();
    /// Ask the server to end the session (the close reply arrives in-stream;
    /// use drain() to collect it).
    void request_close();

    /// Samples accumulated for one subscribed probe.
    struct waveform {
        std::vector<double> times;
        std::vector<double> values;
        std::uint64_t dropped = 0;  ///< cumulative server-side sample drops
        std::uint64_t batches = 0;
        std::uint64_t gaps = 0;  ///< batches that did not start where expected
    };

    /// Read frames until the server's close reply, accumulating samples per
    /// probe (wave()), pace replies (last_pace()) and error frames
    /// (errors()).  Returns the final session statistics.
    core::wire::close_info drain();

    /// Read one raw frame (blocking); throws on EOF.
    core::wire::frame read_frame();
    /// Process a frame the way drain() would (accumulate samples/pace/errors).
    void absorb(const core::wire::frame& f);

    [[nodiscard]] const waveform& wave(const std::string& probe) const;
    [[nodiscard]] bool has_wave(const std::string& probe) const {
        return waves_.count(probe) != 0;
    }
    [[nodiscard]] const std::vector<std::string>& errors() const noexcept {
        return errors_;
    }
    [[nodiscard]] const core::wire::pace_info& last_pace() const noexcept {
        return last_pace_;
    }
    /// Most recent stats frame seen (periodic push or stats() reply).
    [[nodiscard]] const core::wire::stats_info& last_stats() const noexcept {
        return last_stats_;
    }
    /// Stats frames absorbed so far (0 = last_stats() not yet meaningful).
    [[nodiscard]] std::uint64_t stats_frames() const noexcept { return stats_frames_; }

    void close();
    [[nodiscard]] int fd() const noexcept { return fd_; }

private:
    explicit client(int fd) : fd_(fd) {}

    void send(core::wire::msg_type type, const std::vector<std::uint8_t>& payload);

    int fd_ = -1;
    std::map<std::string, waveform> waves_;
    std::vector<std::string> errors_;
    core::wire::pace_info last_pace_{};
    core::wire::stats_info last_stats_{};
    std::uint64_t stats_frames_ = 0;
};

}  // namespace sca::server

#endif  // SCA_SERVER_SERVER_HPP
