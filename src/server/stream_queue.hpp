// Bounded per-session frame queue between a session's kernel worker thread
// (producer) and the server's poll() I/O thread (consumer).
//
// Backpressure discipline (the wireless-gk ring-buffer rule, applied to
// waveform streaming): the kernel must never block on a slow network peer.
// Sample batches are pushed with try_push_samples() — when the queue is at
// capacity the batch is dropped and counted, and the *next* delivered batch
// carries a first-index gap plus the cumulative drop count so the client can
// see exactly what it lost.  Control replies (opened/pace/error/close) are
// never dropped: they are rare, small, and the client cannot resynchronize
// without them, so push_control() ignores the capacity bound.
#ifndef SCA_SERVER_STREAM_QUEUE_HPP
#define SCA_SERVER_STREAM_QUEUE_HPP

#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "core/run_protocol.hpp"

namespace sca::server {

/// One frame waiting to be written to the session's socket.
struct outbound_frame {
    core::wire::msg_type type = core::wire::msg_type::error;
    std::vector<std::uint8_t> payload;
};

class stream_queue {
public:
    explicit stream_queue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

    stream_queue(const stream_queue&) = delete;
    stream_queue& operator=(const stream_queue&) = delete;

    /// Enqueue a control reply; always accepted.
    void push_control(outbound_frame f) {
        const std::lock_guard<std::mutex> lock(mutex_);
        q_.push_back(std::move(f));
        if (q_.size() > max_depth_) max_depth_ = q_.size();
    }

    /// Enqueue a sample batch unless the queue is full; false = dropped.
    [[nodiscard]] bool try_push_samples(outbound_frame f) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (q_.size() >= capacity_) {
            ++dropped_batches_;
            return false;
        }
        q_.push_back(std::move(f));
        if (q_.size() > max_depth_) max_depth_ = q_.size();
        return true;
    }

    /// Dequeue the oldest frame; false when empty.
    [[nodiscard]] bool pop(outbound_frame& out) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (q_.empty()) return false;
        out = std::move(q_.front());
        q_.pop_front();
        return true;
    }

    [[nodiscard]] std::size_t size() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return q_.size();
    }

    [[nodiscard]] std::uint64_t dropped_batches() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return dropped_batches_;
    }

    /// High-water mark of queued frames over the queue's lifetime — the
    /// backpressure headroom figure the close frame reports.
    [[nodiscard]] std::uint64_t max_depth() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        return max_depth_;
    }

private:
    mutable std::mutex mutex_;
    std::deque<outbound_frame> q_;
    std::size_t capacity_;
    std::uint64_t dropped_batches_ = 0;
    std::uint64_t max_depth_ = 0;
};

}  // namespace sca::server

#endif  // SCA_SERVER_STREAM_QUEUE_HPP
