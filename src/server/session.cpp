#include "server/session.hpp"

#include <algorithm>
#include <exception>
#include <utility>
#include <vector>

#include "core/scenario.hpp"
#include "kernel/context.hpp"
#include "util/report.hpp"
#include "util/trace_export.hpp"

namespace sca::server {

namespace wire = core::wire;

session::session(config cfg, wire::open_request req)
    : cfg_(std::move(cfg)), req_(std::move(req)), out_(cfg_.queue_capacity) {}

session::~session() {
    request_stop();
    join();
}

void session::start() { worker_ = std::thread([this] { worker_body(); }); }

void session::enqueue(wire::frame f) {
    {
        const std::lock_guard<std::mutex> lock(command_mutex_);
        commands_.push_back(std::move(f));
    }
    command_cv_.notify_one();
}

void session::request_stop() {
    {
        const std::lock_guard<std::mutex> lock(command_mutex_);
        stop_requested_ = true;
    }
    command_cv_.notify_one();
}

void session::join() {
    if (worker_.joinable()) worker_.join();
}

void session::wake() {
    if (cfg_.wake) cfg_.wake();
}

void session::send_error(const std::string& message) {
    out_.push_control({wire::msg_type::error, wire::encode_error(message)});
    wake();
}

void session::send_close(wire::close_reason reason, core::testbench* tb) {
    // A gap is normally reported by the next delivered batch; if the run
    // ends while the consumer is still behind, there is no next batch, so
    // deliver an empty one carrying the final dropped count per probe
    // (push_control: the closing handshake is never dropped).
    for (const auto& [probe, sub] : subs_) {
        if (sub.dropped == 0) continue;
        wire::sample_batch tail;
        tail.probe = probe;
        tail.first_index = sub.next;
        tail.dropped = sub.dropped;
        out_.push_control({wire::msg_type::samples, wire::encode_samples(tail)});
    }
    wire::close_info info;
    info.reason = reason;
    info.samples_streamed = streamed_.load(std::memory_order_relaxed);
    info.samples_dropped = dropped_.load(std::memory_order_relaxed);
    info.max_queue_depth = out_.max_depth();
    info.slices = slices_.load(std::memory_order_relaxed);
    if (tb != nullptr) {
        auto& sim = tb->sim();
        info.sim_time_s = sim.now().to_seconds();
        const auto& sched = sim.context().sched();
        info.pace_drift_s = sched.pacing_drift();
        info.pace_max_drift_s = sched.pacing_max_drift();
        info.measurements = tb->measurements();
    }
    out_.push_control({wire::msg_type::close, wire::encode_close(info)});
    wake();
}

void session::send_stats(core::testbench& tb) {
    wire::stats_info info;
    info.sim_time_s = tb.sim().now().to_seconds();
    info.slices = slices_.load(std::memory_order_relaxed);
    info.samples_streamed = streamed_.load(std::memory_order_relaxed);
    info.samples_dropped = dropped_.load(std::memory_order_relaxed);
    info.queue_depth = out_.size();
    info.max_queue_depth = out_.max_depth();
    const auto& sched = tb.context().sched();
    info.pace_drift_s = sched.pacing_drift();
    info.pace_max_drift_s = sched.pacing_max_drift();
    out_.push_control({wire::msg_type::stats, wire::encode_stats(info)});
    wake();
}

void session::stream_new_rows(core::testbench& tb) {
    const auto& times = tb.times();
    const auto& rows = tb.trace().rows();
    bool pushed = false;
    for (auto& [probe, sub] : subs_) {
        while (sub.next < times.size()) {
            const std::size_t n =
                std::min<std::size_t>(times.size() - sub.next, cfg_.max_batch_samples);
            wire::sample_batch batch;
            batch.probe = probe;
            batch.first_index = sub.next;
            batch.dropped = sub.dropped;
            batch.times.reserve(n);
            batch.values.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
                batch.times.push_back(times[sub.next + i]);
                batch.values.push_back(rows[sub.next + i][sub.column]);
            }
            // The kernel-side push never blocks: a full queue means the
            // consumer is slow, and the batch is dropped with its count —
            // the next delivered batch carries the gap.
            if (out_.try_push_samples(
                    {wire::msg_type::samples, wire::encode_samples(batch)})) {
                streamed_.fetch_add(n, std::memory_order_relaxed);
                pushed = true;
            } else {
                sub.dropped += n;
                dropped_.fetch_add(n, std::memory_order_relaxed);
            }
            sub.next += n;
        }
    }
    if (pushed) wake();
}

void session::handle_command(const wire::frame& f, core::testbench& tb) {
    switch (f.type) {
        case wire::msg_type::param: {
            const wire::param_poke poke =
                wire::decode_poke(f.payload.data(), f.payload.size());
            try {
                tb.poke(poke.name, poke.value);
            } catch (const util::error& e) {
                send_error(e.what());
            }
            break;
        }
        case wire::msg_type::subscribe: {
            const wire::subscribe_request req =
                wire::decode_subscribe(f.payload.data(), f.payload.size());
            if (!req.on) {
                subs_.erase(req.probe);
                break;
            }
            const std::vector<std::string> names = tb.probe_names();
            const auto it = std::find(names.begin(), names.end(), req.probe);
            if (it == names.end()) {
                send_error("sim_server: no probe named '" + req.probe + "'");
                break;
            }
            subscription sub;
            sub.column = static_cast<std::size_t>(it - names.begin());
            subs_.emplace(req.probe, sub);  // streams from sample 0
            break;
        }
        case wire::msg_type::pace: {
            const wire::pace_info req =
                wire::decode_pace(f.payload.data(), f.payload.size());
            auto& sched = tb.context().sched();
            sched.set_pacing(req.real_time_factor);
            wire::pace_info reply;
            reply.real_time_factor = sched.pacing_factor();
            reply.drift_s = sched.pacing_drift();
            reply.max_drift_s = sched.pacing_max_drift();
            out_.push_control({wire::msg_type::pace, wire::encode_pace(reply)});
            wake();
            break;
        }
        case wire::msg_type::run_state: {
            const bool running =
                wire::decode_run_state(f.payload.data(), f.payload.size());
            if (running && paused_) {
                // Re-anchor pacing so the paused wall-clock interval does
                // not count as lag (no catch-up sprint on resume).
                auto& sched = tb.context().sched();
                if (sched.pacing_factor() > 0.0) sched.set_pacing(sched.pacing_factor());
            }
            paused_ = !running;
            break;
        }
        case wire::msg_type::stats:
            // On-demand telemetry snapshot; the reply reuses the same frame
            // type, so a client can tell push from reply only by having asked.
            send_stats(tb);
            break;
        case wire::msg_type::close:
            close_requested_ = true;
            break;
        default:
            send_error("sim_server: unexpected frame type in session");
            break;
    }
}

void session::worker_body() {
    std::unique_ptr<core::testbench> tb;
    try {
        tb = core::scenario::find(req_.scenario).build(req_.overrides);
        util::require(tb->stop_time() > de::time::zero(), "sim_server",
                      "scenario '" + req_.scenario +
                          "' sets no stop time; sessions need a bounded run");
        // No explicit elaborate: the first run() slice attaches the trace
        // recorder and then elaborates, the same order as an offline run —
        // a different registration order would shift the t=0 sample and
        // break bit-identity with offline waveforms.
    } catch (const std::exception& e) {
        send_error(e.what());
        send_close(wire::close_reason::failed, nullptr);
        finished_.store(true, std::memory_order_release);
        wake();
        return;
    }

    wire::session_info info;
    info.session_id = cfg_.id;
    info.stop_time_s = tb->stop_time().to_seconds();
    info.sample_period_s = tb->sample_period().to_seconds();
    info.probes = tb->probe_names();
    out_.push_control({wire::msg_type::opened, wire::encode_opened(info)});
    wake();

    wire::close_reason reason = wire::close_reason::finished;
    try {
        for (;;) {
            // Apply every pending control frame between slices.
            std::deque<wire::frame> pending;
            bool stopping = false;
            {
                std::unique_lock<std::mutex> lock(command_mutex_);
                if (paused_ && commands_.empty() && !stop_requested_) {
                    command_cv_.wait(lock, [this] {
                        return !commands_.empty() || stop_requested_;
                    });
                }
                pending.swap(commands_);
                stopping = stop_requested_;
            }
            if (stopping) {
                // Peer is gone: exit without flushing — nobody is reading.
                finished_.store(true, std::memory_order_release);
                return;
            }
            for (const wire::frame& f : pending) handle_command(f, *tb);
            if (close_requested_) {
                stream_new_rows(*tb);
                reason = wire::close_reason::client_request;
                break;
            }
            if (paused_) continue;

            const de::time now = tb->sim().now();
            const de::time stop = tb->stop_time();
            if (now >= stop) {
                stream_new_rows(*tb);
                break;  // reason stays `finished`
            }
            {
                SCA_TRACE_SPAN_T(&tb->context().tracer(), "server.slice", "server",
                                 now.to_seconds());
                tb->run(std::min(cfg_.slice, stop - now));
                stream_new_rows(*tb);
            }
            const std::uint64_t done =
                slices_.fetch_add(1, std::memory_order_relaxed) + 1;
            if (cfg_.stats_every_slices > 0 && done % cfg_.stats_every_slices == 0) {
                send_stats(*tb);
            }
        }
        send_close(reason, tb.get());
    } catch (const std::exception& e) {
        send_error(e.what());
        send_close(wire::close_reason::failed, tb.get());
    }
    finished_.store(true, std::memory_order_release);
    wake();
}

}  // namespace sca::server
