#include "server/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/run_backend.hpp"
#include "core/scenario.hpp"
#include "server/session.hpp"
#include "util/report.hpp"

namespace sca::server {

namespace wire = core::wire;

namespace {

/// Outbound bytes buffered per connection before the server stops pulling
/// from the session queue — beyond this the backpressure moves to the queue,
/// where sample batches drop instead of growing the heap without bound.
constexpr std::size_t k_outbuf_high_watermark = 256 * 1024;

constexpr std::size_t k_read_chunk = 64 * 1024;

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    util::require(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                  "sim_server", std::string("fcntl failed: ") + std::strerror(errno));
}

int listen_unix(const std::string& path) {
    util::require(path.size() < sizeof(sockaddr_un{}.sun_path), "sim_server",
                  "AF_UNIX path '" + path + "' is too long");
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    util::require(fd >= 0, "sim_server",
                  std::string("socket failed: ") + std::strerror(errno));
    ::unlink(path.c_str());  // stale socket from a previous run
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, 128) != 0) {
        const int err = errno;
        ::close(fd);
        util::report_fatal("sim_server", "cannot listen on AF_UNIX path '" + path +
                                             "': " + std::strerror(err));
    }
    return fd;
}

}  // namespace

// ------------------------------------------------------------- connection --

struct sim_server::connection {
    int fd = -1;
    std::vector<std::uint8_t> inbuf;
    std::vector<std::uint8_t> outbuf;
    std::size_t out_pos = 0;  ///< bytes of outbuf already written
    std::unique_ptr<session> sess;
    bool dead = false;              ///< peer gone / protocol violation
    bool close_after_flush = false; ///< finish writing outbuf, then close
    bool counted_finished = false;  ///< finished_sessions_ bumped already
};

// -------------------------------------------------------------- sim_server --

sim_server::sim_server(options opt) : opt_(std::move(opt)) {}

sim_server::~sim_server() { stop(); }

void sim_server::start() {
    util::require(!started_, "sim_server", "start() called twice");
    int pipefd[2];
    util::require(::pipe(pipefd) == 0, "sim_server",
                  std::string("pipe failed: ") + std::strerror(errno));
    wake_read_fd_ = pipefd[0];
    wake_write_fd_ = pipefd[1];
    set_nonblocking(wake_read_fd_);
    set_nonblocking(wake_write_fd_);

    if (opt_.tcp) {
        port_ = opt_.port;
        listen_tcp_fd_ = core::listen_tcp(port_);
        set_nonblocking(listen_tcp_fd_);
    }
    if (!opt_.unix_path.empty()) {
        listen_unix_fd_ = listen_unix(opt_.unix_path);
        set_nonblocking(listen_unix_fd_);
    }

    stop_requested_.store(false, std::memory_order_relaxed);
    io_ = std::thread([this] { io_body(); });
    started_ = true;
}

void sim_server::stop() {
    if (!started_) return;
    stop_requested_.store(true, std::memory_order_release);
    wake();
    io_.join();
    if (listen_tcp_fd_ >= 0) ::close(listen_tcp_fd_);
    if (listen_unix_fd_ >= 0) {
        ::close(listen_unix_fd_);
        ::unlink(opt_.unix_path.c_str());
    }
    ::close(wake_read_fd_);
    ::close(wake_write_fd_);
    listen_tcp_fd_ = listen_unix_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
    started_ = false;
}

void sim_server::wake() const {
    const std::uint8_t byte = 1;
    // A full pipe already guarantees a pending wake-up; EAGAIN is success.
    [[maybe_unused]] const ssize_t w = ::write(wake_write_fd_, &byte, 1);
}

void sim_server::accept_clients(int listen_fd, bool tcp) {
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
            util::report_fatal("sim_server",
                               std::string("accept failed: ") + std::strerror(errno));
        }
        set_nonblocking(fd);
        if (tcp) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        }
        auto conn = std::make_unique<connection>();
        conn->fd = fd;
        conns_.push_back(std::move(conn));
    }
}

void sim_server::queue_reply(connection& c, wire::msg_type type,
                             const std::vector<std::uint8_t>& payload) {
    const std::vector<std::uint8_t> bytes = wire::pack_frame(type, payload);
    c.outbuf.insert(c.outbuf.end(), bytes.begin(), bytes.end());
}

void sim_server::handle_frame(connection& c, const wire::frame& f) {
    switch (f.type) {
        case wire::msg_type::hello:
            // Version negotiation: decode validates the client's byte, the
            // reply tells the client what the server actually speaks.
            (void)wire::decode_hello(f.payload.data(), f.payload.size());
            queue_reply(c, wire::msg_type::hello,
                        wire::encode_hello(wire::k_session_version));
            break;
        case wire::msg_type::catalog: {
            std::vector<wire::catalog_entry> entries;
            for (const std::string& name : core::scenario::names()) {
                entries.push_back({name, core::scenario::find(name).defaults()});
            }
            queue_reply(c, wire::msg_type::catalog, wire::encode_catalog(entries));
            break;
        }
        case wire::msg_type::open: {
            if (c.sess) {
                queue_reply(c, wire::msg_type::error,
                            wire::encode_error(
                                "sim_server: connection already has an open session"));
                break;
            }
            const wire::open_request req =
                wire::decode_open(f.payload.data(), f.payload.size());
            session::config cfg;
            cfg.id = next_session_id_++;
            cfg.slice = req.slice_us > 0
                            ? de::time(static_cast<double>(req.slice_us),
                                       de::time_unit::us)
                            : opt_.default_slice;
            cfg.queue_capacity = opt_.queue_capacity;
            cfg.max_batch_samples = opt_.max_batch_samples;
            cfg.stats_every_slices = opt_.stats_every_slices;
            cfg.wake = [this] { wake(); };
            c.sess = std::make_unique<session>(std::move(cfg), req);
            c.sess->start();
            sessions_opened_.fetch_add(1, std::memory_order_relaxed);
            active_sessions_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        case wire::msg_type::param:
        case wire::msg_type::subscribe:
        case wire::msg_type::pace:
        case wire::msg_type::run_state:
        case wire::msg_type::stats:
        case wire::msg_type::close:
            if (c.sess) {
                c.sess->enqueue(f);
            } else {
                queue_reply(c, wire::msg_type::error,
                            wire::encode_error("sim_server: no open session"));
            }
            break;
        default:
            // A worker-protocol frame (job/result/shutdown/header) on a
            // session socket: tell the client and hang up after the flush.
            queue_reply(
                c, wire::msg_type::error,
                wire::encode_error("sim_server: frame type not valid on a session "
                                   "connection"));
            c.close_after_flush = true;
            break;
    }
}

void sim_server::on_readable(connection& c) {
    for (;;) {
        const std::size_t old = c.inbuf.size();
        c.inbuf.resize(old + k_read_chunk);
        const ssize_t r = ::recv(c.fd, c.inbuf.data() + old, k_read_chunk, 0);
        if (r > 0) {
            c.inbuf.resize(old + static_cast<std::size_t>(r));
            if (static_cast<std::size_t>(r) < k_read_chunk) break;
            continue;
        }
        c.inbuf.resize(old);
        if (r == 0) {  // orderly shutdown
            c.dead = true;
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
        c.dead = true;  // ECONNRESET and friends
        return;
    }

    // Incremental parse: a partial frame waits for more bytes, a torn or
    // corrupt one (bad magic/length/checksum) is a protocol violation.
    std::size_t offset = 0;
    try {
        while (offset < c.inbuf.size()) {
            const std::size_t need =
                wire::frame_size_hint(c.inbuf.data() + offset, c.inbuf.size() - offset);
            if (need == 0 || c.inbuf.size() - offset < need) break;
            wire::frame f;
            (void)wire::unpack_frame(c.inbuf.data(), c.inbuf.size(), offset, f);
            handle_frame(c, f);
            if (c.close_after_flush) break;
        }
    } catch (const std::exception& e) {
        queue_reply(c, wire::msg_type::error, wire::encode_error(e.what()));
        c.close_after_flush = true;
    }
    c.inbuf.erase(c.inbuf.begin(),
                  c.inbuf.begin() + static_cast<std::ptrdiff_t>(offset));
}

void sim_server::pump_outbound(connection& c) {
    if (!c.sess) return;
    if (!c.counted_finished && c.sess->finished()) {
        c.counted_finished = true;
        finished_sessions_.fetch_add(1, std::memory_order_relaxed);
    }
    outbound_frame f;
    while (c.outbuf.size() - c.out_pos < k_outbuf_high_watermark &&
           c.sess->out().pop(f)) {
        queue_reply(c, f.type, f.payload);
    }
}

bool sim_server::flush(connection& c) {
    while (c.out_pos < c.outbuf.size()) {
        const ssize_t w = ::send(c.fd, c.outbuf.data() + c.out_pos,
                                 c.outbuf.size() - c.out_pos, MSG_NOSIGNAL);
        if (w > 0) {
            c.out_pos += static_cast<std::size_t>(w);
            continue;
        }
        if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
            break;  // wait for POLLOUT
        }
        return false;  // EPIPE/ECONNRESET: peer gone
    }
    if (c.out_pos == c.outbuf.size()) {
        c.outbuf.clear();
        c.out_pos = 0;
    } else if (c.out_pos > k_outbuf_high_watermark) {
        c.outbuf.erase(c.outbuf.begin(),
                       c.outbuf.begin() + static_cast<std::ptrdiff_t>(c.out_pos));
        c.out_pos = 0;
    }
    return true;
}

void sim_server::destroy_connection(std::size_t index) {
    connection& c = *conns_[index];
    if (c.sess) {
        c.sess->request_stop();
        c.sess->join();
        active_sessions_.fetch_sub(1, std::memory_order_relaxed);
    }
    ::close(c.fd);
    conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(index));
}

void sim_server::io_body() {
    std::vector<pollfd> fds;
    while (!stop_requested_.load(std::memory_order_acquire)) {
        // Move session frames into per-connection buffers first so the poll
        // set below knows which sockets have bytes waiting to go out.
        for (auto& cp : conns_) {
            pump_outbound(*cp);
        }

        fds.clear();
        fds.push_back({wake_read_fd_, POLLIN, 0});
        if (listen_tcp_fd_ >= 0) fds.push_back({listen_tcp_fd_, POLLIN, 0});
        if (listen_unix_fd_ >= 0) fds.push_back({listen_unix_fd_, POLLIN, 0});
        const std::size_t first_conn = fds.size();
        for (auto& cp : conns_) {
            short events = POLLIN;
            if (cp->out_pos < cp->outbuf.size()) events |= POLLOUT;
            fds.push_back({cp->fd, events, 0});
        }

        const int n = ::poll(fds.data(), fds.size(), 100);
        if (n < 0) {
            if (errno == EINTR) continue;
            util::report_fatal("sim_server",
                               std::string("poll failed: ") + std::strerror(errno));
        }

        std::size_t k = 0;
        if (fds[k].revents & POLLIN) {  // drain the wake pipe
            std::uint8_t buf[256];
            while (::read(wake_read_fd_, buf, sizeof buf) > 0) {
            }
        }
        ++k;
        if (listen_tcp_fd_ >= 0) {
            if (fds[k].revents & POLLIN) accept_clients(listen_tcp_fd_, true);
            ++k;
        }
        if (listen_unix_fd_ >= 0) {
            if (fds[k].revents & POLLIN) accept_clients(listen_unix_fd_, false);
            ++k;
        }

        // New connections accepted above are not in fds; they are polled on
        // the next pass.  Iterate the snapshot only.
        const std::size_t snapshot = conns_.size() < fds.size() - first_conn
                                         ? conns_.size()
                                         : fds.size() - first_conn;
        for (std::size_t i = 0; i < snapshot; ++i) {
            connection& c = *conns_[i];
            const short rev = fds[first_conn + i].revents;
            if (rev & (POLLERR | POLLHUP | POLLNVAL)) {
                // Keep reading after POLLHUP: the peer may have sent frames
                // then shut down; recv() returning 0 marks the end.
                if (!(rev & POLLIN)) c.dead = true;
            }
            if (!c.dead && (rev & POLLIN)) on_readable(c);
            pump_outbound(c);
            if (!c.dead && !flush(c)) c.dead = true;
            if (!c.dead && c.close_after_flush && c.out_pos == c.outbuf.size()) {
                c.dead = true;
            }
        }

        for (std::size_t i = conns_.size(); i-- > 0;) {
            if (conns_[i]->dead) destroy_connection(i);
        }
    }

    for (std::size_t i = conns_.size(); i-- > 0;) destroy_connection(i);
}

// ------------------------------------------------------------------ client --

client::~client() { close(); }

client::client(client&& other) noexcept
    : fd_(other.fd_),
      waves_(std::move(other.waves_)),
      errors_(std::move(other.errors_)),
      last_pace_(other.last_pace_) {
    other.fd_ = -1;
}

client& client::operator=(client&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        waves_ = std::move(other.waves_);
        errors_ = std::move(other.errors_);
        last_pace_ = other.last_pace_;
        other.fd_ = -1;
    }
    return *this;
}

void client::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

client client::connect_tcp(const std::string& host, std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    util::require(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                  "sim_client", "'" + host + "' is not a numeric IPv4 address");
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    util::require(fd >= 0, "sim_client",
                  std::string("socket failed: ") + std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        const int err = errno;
        ::close(fd);
        util::report_fatal("sim_client", "cannot connect to " + host + ":" +
                                             std::to_string(port) + ": " +
                                             std::strerror(err));
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return client(fd);
}

client client::connect_unix(const std::string& path) {
    util::require(path.size() < sizeof(sockaddr_un{}.sun_path), "sim_client",
                  "AF_UNIX path '" + path + "' is too long");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    util::require(fd >= 0, "sim_client",
                  std::string("socket failed: ") + std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        const int err = errno;
        ::close(fd);
        util::report_fatal("sim_client", "cannot connect to AF_UNIX path '" + path +
                                             "': " + std::strerror(err));
    }
    return client(fd);
}

void client::send(wire::msg_type type, const std::vector<std::uint8_t>& payload) {
    util::require(wire::write_frame(fd_, type, payload), "sim_client",
                  "server closed the connection");
}

wire::frame client::read_frame() {
    wire::frame f;
    util::require(wire::read_frame(fd_, f), "sim_client",
                  "server closed the connection");
    return f;
}

std::uint8_t client::hello() {
    send(wire::msg_type::hello, wire::encode_hello(wire::k_session_version));
    const wire::frame f = read_frame();
    util::require(f.type == wire::msg_type::hello, "sim_client",
                  "expected a hello reply");
    return wire::decode_hello(f.payload.data(), f.payload.size());
}

std::vector<wire::catalog_entry> client::catalog() {
    send(wire::msg_type::catalog, {});
    const wire::frame f = read_frame();
    util::require(f.type == wire::msg_type::catalog, "sim_client",
                  "expected a catalog reply");
    return wire::decode_catalog(f.payload.data(), f.payload.size());
}

void client::open_async(const std::string& scenario, const core::params& overrides,
                        std::uint64_t slice_us) {
    wire::open_request req;
    req.scenario = scenario;
    req.overrides = overrides;
    req.slice_us = slice_us;
    send(wire::msg_type::open, wire::encode_open(req));
}

wire::session_info client::await_opened() {
    // The opened reply comes from the session worker; an error frame (and
    // then a failed close) arrives instead when the scenario cannot build.
    for (;;) {
        const wire::frame f = read_frame();
        if (f.type == wire::msg_type::opened) {
            return wire::decode_opened(f.payload.data(), f.payload.size());
        }
        if (f.type == wire::msg_type::error) {
            util::report_fatal(
                "sim_client", wire::decode_error(f.payload.data(), f.payload.size()));
        }
        absorb(f);
    }
}

wire::session_info client::open(const std::string& scenario,
                                const core::params& overrides,
                                std::uint64_t slice_us) {
    open_async(scenario, overrides, slice_us);
    wire::session_info info = await_opened();
    resume();  // sessions open paused; start the kernel right away
    return info;
}

void client::subscribe(const std::string& probe, bool on) {
    wire::subscribe_request req;
    req.probe = probe;
    req.on = on;
    send(wire::msg_type::subscribe, wire::encode_subscribe(req));
}

void client::poke(const std::string& name, double value) {
    send(wire::msg_type::param, wire::encode_poke({name, value}));
}

void client::pace(double real_time_factor) {
    wire::pace_info info;
    info.real_time_factor = real_time_factor;
    send(wire::msg_type::pace, wire::encode_pace(info));
}

void client::pause() { send(wire::msg_type::run_state, wire::encode_run_state(false)); }

void client::resume() { send(wire::msg_type::run_state, wire::encode_run_state(true)); }

void client::request_close() { send(wire::msg_type::close, {}); }

void client::stats() { send(wire::msg_type::stats, {}); }

void client::absorb(const wire::frame& f) {
    switch (f.type) {
        case wire::msg_type::samples: {
            const wire::sample_batch batch =
                wire::decode_samples(f.payload.data(), f.payload.size());
            waveform& w = waves_[batch.probe];
            // Fresh server-side drops show up as a first-index jump past what
            // we have received, together with a bumped cumulative drop count.
            if (batch.dropped > w.dropped ||
                batch.first_index != w.times.size() + batch.dropped) {
                ++w.gaps;
            }
            w.times.insert(w.times.end(), batch.times.begin(), batch.times.end());
            w.values.insert(w.values.end(), batch.values.begin(), batch.values.end());
            w.dropped = batch.dropped;
            ++w.batches;
            break;
        }
        case wire::msg_type::pace:
            last_pace_ = wire::decode_pace(f.payload.data(), f.payload.size());
            break;
        case wire::msg_type::stats:
            last_stats_ = wire::decode_stats(f.payload.data(), f.payload.size());
            ++stats_frames_;
            break;
        case wire::msg_type::error:
            errors_.push_back(wire::decode_error(f.payload.data(), f.payload.size()));
            break;
        default:
            break;  // hello/catalog replies read explicitly elsewhere
    }
}

wire::close_info client::drain() {
    for (;;) {
        const wire::frame f = read_frame();
        if (f.type == wire::msg_type::close) {
            return wire::decode_close(f.payload.data(), f.payload.size());
        }
        absorb(f);
    }
}

const client::waveform& client::wave(const std::string& probe) const {
    const auto it = waves_.find(probe);
    util::require(it != waves_.end(), "sim_client",
                  "no samples received for probe '" + probe + "'");
    return it->second;
}

}  // namespace sca::server
