// Linear network primitives (paper phase 1: "Linear network elements
// (electrical element library: R, L, C, sources)") plus the controlled
// sources and the ideal transformer needed for macromodeling (§3:
// "conservative systems may be modeled at system-level as linear network
// macromodels based on simple electrical R, L, C, and controled source
// primitives").
//
// Every component exposes its pins as bindable eln::terminal ports:
//
//   eln::resistor r("r", net, 1e3);
//   r.p(vin);
//   r.n(vout);
//
// which also bind to subcircuit pins for hierarchical composition.  The
// legacy (network&, node, node) constructors remain as thin wrappers that
// bind the terminals immediately.
#ifndef SCA_ELN_PRIMITIVES_HPP
#define SCA_ELN_PRIMITIVES_HPP

#include "eln/network.hpp"
#include "eln/terminal.hpp"
#include "util/bytes.hpp"

namespace sca::eln {

/// Resistor with thermal noise (4kT/R current PSD).
class resistor : public component {
public:
    terminal p, n;

    resistor(const std::string& name, network& net, double ohms);
    resistor(const std::string& name, network& net, node a, node b, double ohms);

    void stamp(network& net) override;

    /// Change the resistance; rewrites the conductance stamp slot in place
    /// (values-only: the solver refactors numerically, no symbolic pass).
    void set_value(double ohms);
    [[nodiscard]] double value() const noexcept { return ohms_; }

    /// Exclude this resistor from noise analysis (ideal element).
    void set_noisy(bool noisy) noexcept { noisy_ = noisy; }

private:
    double ohms_;
    bool noisy_ = true;
    solver::stamp_handle slot_ = solver::no_stamp_handle;
};

/// Capacitor; optional initial voltage taken into account by the DC solve
/// through a momentary equivalent source is not needed: the pseudo-transient
/// DC leaves isolated capacitor nodes at 0; use an initial-condition source
/// if a different start is required.
class capacitor : public component {
public:
    terminal p, n;

    capacitor(const std::string& name, network& net, double farads);
    capacitor(const std::string& name, network& net, node a, node b, double farads);

    void stamp(network& net) override;
    void set_value(double farads);
    [[nodiscard]] double value() const noexcept { return farads_; }

private:
    double farads_;
    solver::stamp_handle slot_ = solver::no_stamp_handle;
};

/// Inductor (owns a branch current unknown).
class inductor : public component {
public:
    terminal p, n;

    inductor(const std::string& name, network& net, double henries);
    inductor(const std::string& name, network& net, node a, node b, double henries);

    void stamp(network& net) override;
    void set_value(double henries);
    [[nodiscard]] double value() const noexcept { return henries_; }

private:
    double henries_;
    solver::stamp_handle slot_ = solver::no_stamp_handle;
};

/// Voltage-controlled voltage source: v(p,n) = gain * v(cp,cn).
class vcvs : public component {
public:
    terminal cp, cn, p, n;

    vcvs(const std::string& name, network& net, double gain);
    vcvs(const std::string& name, network& net, node cp, node cn, node p, node n,
         double gain);
    void stamp(network& net) override;
    void set_gain(double gain);

private:
    double gain_;
    solver::stamp_handle slot_ = solver::no_stamp_handle;
};

/// Voltage-controlled current source: i(p->n) = gm * v(cp,cn).
class vccs : public component {
public:
    terminal cp, cn, p, n;

    vccs(const std::string& name, network& net, double gm);
    vccs(const std::string& name, network& net, node cp, node cn, node p, node n,
         double gm);
    void stamp(network& net) override;
    void set_gm(double gm);

private:
    double gm_;
    solver::stamp_handle slot_ = solver::no_stamp_handle;
};

/// Current-controlled voltage source: v(p,n) = rm * i(control branch).
class ccvs : public component {
public:
    terminal p, n;

    ccvs(const std::string& name, network& net, const component& control, double rm);
    ccvs(const std::string& name, network& net, const component& control, node p, node n,
         double rm);
    void stamp(network& net) override;

private:
    const component* control_;
    double rm_;
};

/// Current-controlled current source: i(p->n) = beta * i(control branch).
class cccs : public component {
public:
    terminal p, n;

    cccs(const std::string& name, network& net, const component& control, double beta);
    cccs(const std::string& name, network& net, const component& control, node p, node n,
         double beta);
    void stamp(network& net) override;

private:
    const component* control_;
    double beta_;
};

/// Ideal transformer with ratio = v1/v2.
class ideal_transformer : public component {
public:
    terminal p1, n1, p2, n2;

    ideal_transformer(const std::string& name, network& net, double ratio);
    ideal_transformer(const std::string& name, network& net, node p1, node n1, node p2,
                      node n2, double ratio);
    void stamp(network& net) override;

private:
    double ratio_;
};

/// Resistive switch: r_on when closed, r_off when open. Both states stamp
/// the same conductance pattern through one stamp slot, so a state change is
/// a values-only update: the solver refactors numerically against its cached
/// symbolic analysis instead of rebuilding the world.
class rswitch : public component {
public:
    terminal p, n;

    rswitch(const std::string& name, network& net, double r_on = 1.0, double r_off = 1e9,
            bool closed = false);
    rswitch(const std::string& name, network& net, node a, node b, double r_on = 1.0,
            double r_off = 1e9, bool closed = false);

    void stamp(network& net) override;

    void set_state(bool closed);
    [[nodiscard]] bool closed() const noexcept { return closed_; }

    // --- checkpoint/restore -------------------------------------------------
    // Only the switch position: writing the member directly (no set_state)
    // avoids flagging a value update — the restored equation values already
    // reflect this position, and a spurious discontinuity would force a
    // backward-Euler step the uninterrupted run never took.
    [[nodiscard]] bool has_snapshot_state() const noexcept override { return true; }
    void save_state(util::byte_writer& w) const override { w.boolean(closed_); }
    void restore_state(util::byte_reader& r) override { closed_ = r.boolean(); }

private:
    double r_on_, r_off_;
    bool closed_;
    solver::stamp_handle slot_ = solver::no_stamp_handle;
};

/// Ideal operational amplifier (nullor): forces v(inp) = v(inn) and supplies
/// whatever output current the constraint requires.  The classic MNA opamp
/// stamp used for system-level active-filter macromodels.
class ideal_opamp : public component {
public:
    terminal inp, inn, out;

    ideal_opamp(const std::string& name, network& net);
    ideal_opamp(const std::string& name, network& net, node inp, node inn, node out);
    void stamp(network& net) override;
};

/// Gyrator: i1 = g * v2, i2 = -g * v1 (port 1 = p1/n1, port 2 = p2/n2).
/// Turns a capacitor into a simulated inductor — the standard trick for
/// integrated filter macromodels.
class gyrator : public component {
public:
    terminal p1, n1, p2, n2;

    gyrator(const std::string& name, network& net, double g);
    gyrator(const std::string& name, network& net, node p1, node n1, node p2, node n2,
            double g);
    void stamp(network& net) override;

private:
    double g_;
};

/// Zero-volt source used as a current probe (owns a branch unknown).
class ammeter : public component {
public:
    terminal p, n;

    ammeter(const std::string& name, network& net);
    ammeter(const std::string& name, network& net, node a, node b);
    void stamp(network& net) override;
};

}  // namespace sca::eln

#endif  // SCA_ELN_PRIMITIVES_HPP
