#include "eln/subcircuit.hpp"

#include <string>

#include "util/report.hpp"

namespace sca::eln {

// ---------------------------------------------------------------- rc_lowpass

rc_lowpass::rc_lowpass(const de::module_name& nm, network& net, double r_ohms,
                       double c_farads)
    : subcircuit(nm, net), in("in", *this, nature::electrical),
      out("out", *this, nature::electrical), ref("ref", *this, nature::electrical),
      r_("r", net, r_ohms), c_("c", net, c_farads) {
    r_.p(in);
    r_.n(out);
    c_.p(out);
    c_.n(ref);
}

// --------------------------------------------------------- resistive_divider

resistive_divider::resistive_divider(const de::module_name& nm, network& net,
                                     double r_top, double r_bottom)
    : subcircuit(nm, net), in("in", *this, nature::electrical),
      out("out", *this, nature::electrical), ref("ref", *this, nature::electrical),
      top_("top", net, r_top), bottom_("bottom", net, r_bottom) {
    top_.p(in);
    top_.n(out);
    bottom_.p(out);
    bottom_.n(ref);
}

// ----------------------------------------------------------------- rc_ladder

rc_ladder::rc_ladder(const de::module_name& nm, network& net, unsigned sections,
                     double r_total, double c_total)
    : subcircuit(nm, net), a("a", *this, nature::electrical),
      b("b", *this, nature::electrical), ref("ref", *this, nature::electrical),
      sections_(sections) {
    util::require(sections >= 1, name(), "rc_ladder needs at least one section");
    util::require(r_total > 0.0 && c_total > 0.0, name(),
                  "rc_ladder needs positive total resistance and capacitance");
    const double r_per = r_total / sections;
    const double c_per = c_total / sections;
    node prev;  // invalid for section 0 (input is the `a` terminal)
    for (unsigned i = 0; i < sections; ++i) {
        auto& r = make_child<resistor>("r" + std::to_string(i), this->net(), r_per);
        auto& c = make_child<capacitor>("c" + std::to_string(i), this->net(), c_per);
        if (i == 0) {
            r.p(a);
        } else {
            r.p(prev);
        }
        if (i + 1 == sections) {
            r.n(b);
            c.p(b);
        } else {
            prev = internal("t" + std::to_string(i));
            r.n(prev);
            c.p(prev);
        }
        c.n(ref);
    }
}

}  // namespace sca::eln
