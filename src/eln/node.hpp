// Conservative nodes and natures.
//
// A node carries an across quantity (voltage, velocity, angular velocity,
// temperature) and sums through quantities (current, force, torque, heat
// flow) to zero — Kirchhoff-style conservation generalized to multiple
// disciplines (paper §2: power electronics and automotive "share the
// distinguished requirement to design multi-domain ... systems").
#ifndef SCA_ELN_NODE_HPP
#define SCA_ELN_NODE_HPP

#include <cstddef>
#include <string>

namespace sca::eln {

class network;

/// Physical discipline of a node. Components check that their terminals
/// have the nature they expect, so a resistor cannot end up on a shaft.
enum class nature {
    electrical,                // across: V,     through: A
    mechanical_translational,  // across: m/s,   through: N
    mechanical_rotational,     // across: rad/s, through: N*m
    thermal,                   // across: K,     through: W
};

[[nodiscard]] const char* nature_name(nature n) noexcept;

/// Value handle to a network node. Ground nodes (reference of each nature)
/// have no unknown; their across value is identically zero.
class node {
public:
    node() = default;  // invalid handle

    [[nodiscard]] bool valid() const noexcept { return net_ != nullptr; }
    [[nodiscard]] bool is_ground() const noexcept { return ground_; }

    /// Index of the across unknown; only for non-ground nodes.
    [[nodiscard]] std::size_t index() const noexcept { return index_; }
    [[nodiscard]] nature kind() const noexcept { return nature_; }
    [[nodiscard]] network* net() const noexcept { return net_; }

private:
    friend class network;
    node(network* net, std::size_t index, nature k, bool ground)
        : net_(net), index_(index), nature_(k), ground_(ground) {}

    network* net_ = nullptr;
    std::size_t index_ = 0;
    nature nature_ = nature::electrical;
    bool ground_ = false;
};

}  // namespace sca::eln

#endif  // SCA_ELN_NODE_HPP
