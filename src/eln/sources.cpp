#include "eln/sources.hpp"

#include <cmath>
#include <numbers>

#include "util/report.hpp"

namespace sca::eln {

// ------------------------------------------------------------------- vsource

vsource::vsource(const std::string& name, network& net, waveform w)
    : component(name, net), p("p", *this, nature::electrical),
      n("n", *this, nature::electrical), wave_(std::move(w)) {}

vsource::vsource(const std::string& name, network& net, node p_node, node n_node,
                 waveform w)
    : vsource(name, net, std::move(w)) {
    p.bind(p_node);
    n.bind(n_node);
}

void vsource::stamp(network& net) {
    const std::size_t k = net.branch_row(*this);
    net.add_a(network::row_of(p.get()), k, 1.0);
    net.add_a(network::row_of(n.get()), k, -1.0);
    net.add_a(k, network::row_of(p.get()), 1.0);
    net.add_a(k, network::row_of(n.get()), -1.0);
    if (wave_.is_dc()) {
        net.add_rhs_constant(k, wave_.dc_value());
    } else {
        const waveform w = wave_;
        net.add_rhs_source(k, [w](double t) { return w.at(t); });
    }
    if (ac_mag_ != 0.0) {
        const double phase = ac_phase_deg_ * std::numbers::pi / 180.0;
        net.add_ac_source(k, std::polar(ac_mag_, phase));
    }
    if (noise_psd_) {
        net.equations().add_noise_source({{k, 1.0}}, noise_psd_, name());
    }
}

void vsource::set_ac(double magnitude, double phase_deg) {
    ac_mag_ = magnitude;
    ac_phase_deg_ = phase_deg;
}

void vsource::set_noise_psd(std::function<double(double)> psd) {
    noise_psd_ = std::move(psd);
}

// ------------------------------------------------------------------- isource

isource::isource(const std::string& name, network& net, waveform w)
    : component(name, net), p("p", *this, nature::electrical),
      n("n", *this, nature::electrical), wave_(std::move(w)) {}

isource::isource(const std::string& name, network& net, node p_node, node n_node,
                 waveform w)
    : isource(name, net, std::move(w)) {
    p.bind(p_node);
    n.bind(n_node);
}

void isource::stamp(network& net) {
    const std::size_t rp = network::row_of(p.get());
    const std::size_t rn = network::row_of(n.get());
    if (wave_.is_dc()) {
        net.add_rhs_constant(rp, -wave_.dc_value());
        net.add_rhs_constant(rn, wave_.dc_value());
    } else {
        const waveform w = wave_;
        net.add_rhs_source(rp, [w](double t) { return -w.at(t); });
        net.add_rhs_source(rn, [w](double t) { return w.at(t); });
    }
    if (ac_mag_ != 0.0) {
        const double phase = ac_phase_deg_ * std::numbers::pi / 180.0;
        net.add_ac_source(rp, -std::polar(ac_mag_, phase));
        net.add_ac_source(rn, std::polar(ac_mag_, phase));
    }
    if (noise_psd_) {
        std::vector<std::pair<std::size_t, double>> injections;
        if (!p.get().is_ground()) injections.emplace_back(p.get().index(), -1.0);
        if (!n.get().is_ground()) injections.emplace_back(n.get().index(), 1.0);
        if (!injections.empty()) {
            net.equations().add_noise_source(std::move(injections), noise_psd_, name());
        }
    }
}

void isource::set_ac(double magnitude, double phase_deg) {
    ac_mag_ = magnitude;
    ac_phase_deg_ = phase_deg;
}

void isource::set_noise_psd(std::function<double(double)> psd) {
    noise_psd_ = std::move(psd);
}

}  // namespace sca::eln
