// Bindable conservative-law ports (the structural face of the ELN view).
//
// A terminal is the named connection point of a component or subcircuit.
// It binds either directly to a network node
//
//   eln::resistor r("r", net, 1e3);
//   r.p(vin);
//   r.n(vout);
//
// or hierarchically to a terminal of the enclosing subcircuit, so composite
// blocks expose their pins without knowing the outer netlist:
//
//   struct divider : eln::subcircuit {
//       eln::terminal in, out, ref;
//       ...
//       top.p(in);   // component terminal forwards to the subcircuit pin
//   };
//
// Forwarding chains are resolved at elaboration; an unbound chain is an
// elaboration error reporting the terminal's full hierarchical path.
#ifndef SCA_ELN_TERMINAL_HPP
#define SCA_ELN_TERMINAL_HPP

#include <optional>
#include <string>

#include "eln/node.hpp"
#include "kernel/object.hpp"

namespace sca::eln {

class component;
class network;
class subcircuit;

class terminal : public de::object {
public:
    /// Terminal owned by a component; with `expected`, node bindings are
    /// nature-checked (matching the checks of the legacy node constructors).
    terminal(std::string name, component& owner);
    terminal(std::string name, component& owner, nature expected);
    /// Exposed pin of a subcircuit.
    terminal(std::string name, subcircuit& owner);
    terminal(std::string name, subcircuit& owner, nature expected);

    ~terminal() override;

    [[nodiscard]] const char* kind() const noexcept override { return "eln_terminal"; }

    /// Bind directly to a node of the owning network.
    void bind(const node& n);
    /// Bind hierarchically to another terminal (typically a subcircuit pin).
    void bind(terminal& t);
    void operator()(const node& n) { bind(n); }
    void operator()(terminal& t) { bind(t); }

    [[nodiscard]] bool is_bound() const noexcept {
        return has_node_ || forward_ != nullptr;
    }

    /// Follow the forwarding chain to the terminal node.  Elaboration-time
    /// error (with this terminal's full hierarchical path) when unbound.
    void resolve();

    /// The resolved node.  Valid after resolve() — immediately for terminals
    /// bound directly to a node.
    [[nodiscard]] const node& get() const;

    [[nodiscard]] network& net() const noexcept { return *net_; }

private:
    terminal(std::string name, de::object& owner, network& net,
             std::optional<nature> expected);
    void check_node(const node& n) const;

    network* net_;
    node node_;
    terminal* forward_ = nullptr;
    bool has_node_ = false;
    std::optional<nature> expected_;

    // Teardown is order-agnostic: whichever of terminal/network dies first
    // unlinks from the other (see ~network).
    friend class network;
};

}  // namespace sca::eln

#endif  // SCA_ELN_TERMINAL_HPP
