#include "eln/multidomain.hpp"

#include "util/report.hpp"

namespace sca::eln {

namespace {
void stamp_waveform_flow(network& net, const node& p, const node& n, const waveform& w) {
    // A through-quantity source (force/torque/heat flow) is the analog of a
    // current source: inject into n, extract from p.
    const std::size_t rp = network::row_of(p);
    const std::size_t rn = network::row_of(n);
    if (w.is_dc()) {
        net.add_rhs_constant(rp, -w.dc_value());
        net.add_rhs_constant(rn, w.dc_value());
    } else {
        net.add_rhs_source(rp, [w](double t) { return -w.at(t); });
        net.add_rhs_source(rn, [w](double t) { return w.at(t); });
    }
}

void stamp_integral_branch(network& net, component& c, const node& a, const node& b,
                           double inverse_stiffness) {
    // Spring/torsion-spring: through quantity F with dF/dt = k*(v_a - v_b),
    // the exact analog of an inductor with L = 1/k.
    const std::size_t k = net.branch_row(c, "f");
    net.add_a(network::row_of(a), k, 1.0);
    net.add_a(network::row_of(b), k, -1.0);
    net.add_a(k, network::row_of(a), 1.0);
    net.add_a(k, network::row_of(b), -1.0);
    net.add_b(k, k, -inverse_stiffness);
}
}  // namespace

// ---------------------------------------------------------------------- mass

mass::mass(const std::string& name, network& net, double kilograms)
    : component(name, net), p("p", *this, nature::mechanical_translational),
      m_(kilograms) {
    util::require(kilograms > 0.0, this->name(), "mass must be positive");
}

mass::mass(const std::string& name, network& net, node n, double kilograms)
    : mass(name, net, kilograms) {
    p.bind(n);
}

void mass::stamp(network& net) {
    net.stamp_capacitance(p.get(), net.ground(nature::mechanical_translational), m_);
}

// -------------------------------------------------------------------- damper

damper::damper(const std::string& name, network& net, double n_s_per_m)
    : component(name, net), a("a", *this, nature::mechanical_translational),
      b("b", *this, nature::mechanical_translational), d_(n_s_per_m) {
    util::require(n_s_per_m > 0.0, this->name(), "damping must be positive");
}

damper::damper(const std::string& name, network& net, node a_node, node b_node,
               double n_s_per_m)
    : damper(name, net, n_s_per_m) {
    a.bind(a_node);
    b.bind(b_node);
}

void damper::stamp(network& net) { net.stamp_conductance(a.get(), b.get(), d_); }

// -------------------------------------------------------------------- spring

spring::spring(const std::string& name, network& net, double n_per_m)
    : component(name, net), a("a", *this, nature::mechanical_translational),
      b("b", *this, nature::mechanical_translational), k_(n_per_m) {
    util::require(n_per_m > 0.0, this->name(), "stiffness must be positive");
}

spring::spring(const std::string& name, network& net, node a_node, node b_node,
               double n_per_m)
    : spring(name, net, n_per_m) {
    a.bind(a_node);
    b.bind(b_node);
}

void spring::stamp(network& net) {
    stamp_integral_branch(net, *this, a.get(), b.get(), 1.0 / k_);
}

// -------------------------------------------------------------- force_source

force_source::force_source(const std::string& name, network& net, waveform w)
    : component(name, net), p("p", *this, nature::mechanical_translational),
      n("n", *this, nature::mechanical_translational), wave_(std::move(w)) {}

force_source::force_source(const std::string& name, network& net, node p_node,
                           node n_node, waveform w)
    : force_source(name, net, std::move(w)) {
    p.bind(p_node);
    n.bind(n_node);
}

void force_source::stamp(network& net) {
    stamp_waveform_flow(net, p.get(), n.get(), wave_);
}

// ------------------------------------------------------------ position_probe

position_probe::position_probe(const std::string& name, network& net)
    : component(name, net), p("p", *this, nature::mechanical_translational),
      outp("outp") {
    outp.set_owner(net);
}

position_probe::position_probe(const std::string& name, network& net, node n)
    : position_probe(name, net) {
    p.bind(n);
}

void position_probe::stamp(network& net) {
    row_ = net.branch_row(*this, "x");
    // dx/dt - v = 0
    net.add_b(row_, row_, 1.0);
    net.add_a(row_, network::row_of(p.get()), -1.0);
}

void position_probe::write_tdf_outputs(network& net) {
    outp.write(net.state()[row_]);
}

// ------------------------------------------------------------------- inertia

inertia::inertia(const std::string& name, network& net, double kg_m2)
    : component(name, net), p("p", *this, nature::mechanical_rotational), j_(kg_m2) {
    util::require(kg_m2 > 0.0, this->name(), "inertia must be positive");
}

inertia::inertia(const std::string& name, network& net, node n, double kg_m2)
    : inertia(name, net, kg_m2) {
    p.bind(n);
}

void inertia::stamp(network& net) {
    net.stamp_capacitance(p.get(), net.ground(nature::mechanical_rotational), j_);
}

// --------------------------------------------------------- rotational_damper

rotational_damper::rotational_damper(const std::string& name, network& net,
                                     double n_m_s_per_rad)
    : component(name, net), a("a", *this, nature::mechanical_rotational),
      b("b", *this, nature::mechanical_rotational), d_(n_m_s_per_rad) {
    util::require(n_m_s_per_rad > 0.0, this->name(), "damping must be positive");
}

rotational_damper::rotational_damper(const std::string& name, network& net, node a_node,
                                     node b_node, double n_m_s_per_rad)
    : rotational_damper(name, net, n_m_s_per_rad) {
    a.bind(a_node);
    b.bind(b_node);
}

void rotational_damper::stamp(network& net) {
    net.stamp_conductance(a.get(), b.get(), d_);
}

// ------------------------------------------------------------ torsion_spring

torsion_spring::torsion_spring(const std::string& name, network& net,
                               double n_m_per_rad)
    : component(name, net), a("a", *this, nature::mechanical_rotational),
      b("b", *this, nature::mechanical_rotational), k_(n_m_per_rad) {
    util::require(n_m_per_rad > 0.0, this->name(), "stiffness must be positive");
}

torsion_spring::torsion_spring(const std::string& name, network& net, node a_node,
                               node b_node, double n_m_per_rad)
    : torsion_spring(name, net, n_m_per_rad) {
    a.bind(a_node);
    b.bind(b_node);
}

void torsion_spring::stamp(network& net) {
    stamp_integral_branch(net, *this, a.get(), b.get(), 1.0 / k_);
}

// ------------------------------------------------------------- torque_source

torque_source::torque_source(const std::string& name, network& net, waveform w)
    : component(name, net), p("p", *this, nature::mechanical_rotational),
      n("n", *this, nature::mechanical_rotational), wave_(std::move(w)) {}

torque_source::torque_source(const std::string& name, network& net, node p_node,
                             node n_node, waveform w)
    : torque_source(name, net, std::move(w)) {
    p.bind(p_node);
    n.bind(n_node);
}

void torque_source::stamp(network& net) {
    stamp_waveform_flow(net, p.get(), n.get(), wave_);
}

// ------------------------------------------------------- thermal_capacitance

thermal_capacitance::thermal_capacitance(const std::string& name, network& net,
                                         double j_per_k)
    : component(name, net), p("p", *this, nature::thermal), c_(j_per_k) {
    util::require(j_per_k > 0.0, this->name(), "heat capacity must be positive");
}

thermal_capacitance::thermal_capacitance(const std::string& name, network& net, node n,
                                         double j_per_k)
    : thermal_capacitance(name, net, j_per_k) {
    p.bind(n);
}

void thermal_capacitance::stamp(network& net) {
    net.stamp_capacitance(p.get(), net.ground(nature::thermal), c_);
}

// -------------------------------------------------------- thermal_resistance

thermal_resistance::thermal_resistance(const std::string& name, network& net,
                                       double k_per_w)
    : component(name, net), a("a", *this, nature::thermal),
      b("b", *this, nature::thermal), r_(k_per_w) {
    util::require(k_per_w > 0.0, this->name(), "thermal resistance must be positive");
}

thermal_resistance::thermal_resistance(const std::string& name, network& net,
                                       node a_node, node b_node, double k_per_w)
    : thermal_resistance(name, net, k_per_w) {
    a.bind(a_node);
    b.bind(b_node);
}

void thermal_resistance::stamp(network& net) {
    net.stamp_conductance(a.get(), b.get(), 1.0 / r_);
}

// --------------------------------------------------------------- heat_source

heat_source::heat_source(const std::string& name, network& net, waveform w)
    : component(name, net), p("p", *this, nature::thermal),
      n("n", *this, nature::thermal), wave_(std::move(w)) {}

heat_source::heat_source(const std::string& name, network& net, node p_node,
                         node n_node, waveform w)
    : heat_source(name, net, std::move(w)) {
    p.bind(p_node);
    n.bind(n_node);
}

void heat_source::stamp(network& net) {
    stamp_waveform_flow(net, p.get(), n.get(), wave_);
}

// ------------------------------------------------------------------ dc_motor

dc_motor::dc_motor(const std::string& name, network& net, double resistance,
                   double inductance, double k_torque)
    : component(name, net), p("p", *this, nature::electrical),
      n("n", *this, nature::electrical),
      shaft("shaft", *this, nature::mechanical_rotational), r_(resistance),
      l_(inductance), k_(k_torque) {
    util::require(resistance > 0.0 && inductance > 0.0 && k_torque > 0.0, this->name(),
                  "motor parameters must be positive");
}

dc_motor::dc_motor(const std::string& name, network& net, node elec_p, node elec_n,
                   node shaft_node, double resistance, double inductance,
                   double k_torque)
    : dc_motor(name, net, resistance, inductance, k_torque) {
    p.bind(elec_p);
    n.bind(elec_n);
    shaft.bind(shaft_node);
}

void dc_motor::stamp(network& net) {
    const std::size_t k = net.branch_row(*this);  // armature current
    const std::size_t rp = network::row_of(p.get());
    const std::size_t rn = network::row_of(n.get());
    const std::size_t rw = network::row_of(shaft.get());
    // Electrical KCL.
    net.add_a(rp, k, 1.0);
    net.add_a(rn, k, -1.0);
    // Armature branch: v_p - v_n - R i - L di/dt - K w = 0.
    net.add_a(k, rp, 1.0);
    net.add_a(k, rn, -1.0);
    net.add_a(k, k, -r_);
    net.add_b(k, k, -l_);
    net.add_a(k, rw, -k_);
    // Electromagnetic torque K*i injected into the shaft node.
    net.add_a(rw, k, -k_);
}

}  // namespace sca::eln
