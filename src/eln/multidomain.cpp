#include "eln/multidomain.hpp"

#include "util/report.hpp"

namespace sca::eln {

namespace {
void stamp_waveform_flow(network& net, const node& p, const node& n, const waveform& w) {
    // A through-quantity source (force/torque/heat flow) is the analog of a
    // current source: inject into n, extract from p.
    const std::size_t rp = network::row_of(p);
    const std::size_t rn = network::row_of(n);
    if (w.is_dc()) {
        net.add_rhs_constant(rp, -w.dc_value());
        net.add_rhs_constant(rn, w.dc_value());
    } else {
        net.add_rhs_source(rp, [w](double t) { return -w.at(t); });
        net.add_rhs_source(rn, [w](double t) { return w.at(t); });
    }
}

void stamp_integral_branch(network& net, component& c, const node& a, const node& b,
                           double inverse_stiffness) {
    // Spring/torsion-spring: through quantity F with dF/dt = k*(v_a - v_b),
    // the exact analog of an inductor with L = 1/k.
    const std::size_t k = net.branch_row(c, "f");
    net.add_a(network::row_of(a), k, 1.0);
    net.add_a(network::row_of(b), k, -1.0);
    net.add_a(k, network::row_of(a), 1.0);
    net.add_a(k, network::row_of(b), -1.0);
    net.add_b(k, k, -inverse_stiffness);
}
}  // namespace

// ---------------------------------------------------------------------- mass

mass::mass(const std::string& name, network& net, node n, double kilograms)
    : component(name, net), n_(n), m_(kilograms) {
    network::check_nature(n, nature::mechanical_translational, this->name());
    util::require(kilograms > 0.0, this->name(), "mass must be positive");
}

void mass::stamp(network& net) {
    net.stamp_capacitance(n_, net.ground(nature::mechanical_translational), m_);
}

// -------------------------------------------------------------------- damper

damper::damper(const std::string& name, network& net, node a, node b, double n_s_per_m)
    : component(name, net), a_(a), b_(b), d_(n_s_per_m) {
    network::check_nature(a, nature::mechanical_translational, this->name());
    network::check_nature(b, nature::mechanical_translational, this->name());
    util::require(n_s_per_m > 0.0, this->name(), "damping must be positive");
}

void damper::stamp(network& net) { net.stamp_conductance(a_, b_, d_); }

// -------------------------------------------------------------------- spring

spring::spring(const std::string& name, network& net, node a, node b, double n_per_m)
    : component(name, net), a_(a), b_(b), k_(n_per_m) {
    network::check_nature(a, nature::mechanical_translational, this->name());
    network::check_nature(b, nature::mechanical_translational, this->name());
    util::require(n_per_m > 0.0, this->name(), "stiffness must be positive");
}

void spring::stamp(network& net) { stamp_integral_branch(net, *this, a_, b_, 1.0 / k_); }

// -------------------------------------------------------------- force_source

force_source::force_source(const std::string& name, network& net, node p, node n,
                           waveform w)
    : component(name, net), p_(p), n_(n), wave_(std::move(w)) {
    network::check_nature(p, nature::mechanical_translational, this->name());
    network::check_nature(n, nature::mechanical_translational, this->name());
}

void force_source::stamp(network& net) { stamp_waveform_flow(net, p_, n_, wave_); }

// ------------------------------------------------------------ position_probe

position_probe::position_probe(const std::string& name, network& net, node n)
    : component(name, net), outp("outp"), n_(n) {
    network::check_nature(n, nature::mechanical_translational, this->name());
    outp.set_owner(net);
}

void position_probe::stamp(network& net) {
    row_ = net.branch_row(*this, "x");
    // dx/dt - v = 0
    net.add_b(row_, row_, 1.0);
    net.add_a(row_, network::row_of(n_), -1.0);
}

void position_probe::write_tdf_outputs(network& net) {
    outp.write(net.state()[row_]);
}

// ------------------------------------------------------------------- inertia

inertia::inertia(const std::string& name, network& net, node n, double kg_m2)
    : component(name, net), n_(n), j_(kg_m2) {
    network::check_nature(n, nature::mechanical_rotational, this->name());
    util::require(kg_m2 > 0.0, this->name(), "inertia must be positive");
}

void inertia::stamp(network& net) {
    net.stamp_capacitance(n_, net.ground(nature::mechanical_rotational), j_);
}

// --------------------------------------------------------- rotational_damper

rotational_damper::rotational_damper(const std::string& name, network& net, node a, node b,
                                     double n_m_s_per_rad)
    : component(name, net), a_(a), b_(b), d_(n_m_s_per_rad) {
    network::check_nature(a, nature::mechanical_rotational, this->name());
    network::check_nature(b, nature::mechanical_rotational, this->name());
    util::require(n_m_s_per_rad > 0.0, this->name(), "damping must be positive");
}

void rotational_damper::stamp(network& net) { net.stamp_conductance(a_, b_, d_); }

// ------------------------------------------------------------ torsion_spring

torsion_spring::torsion_spring(const std::string& name, network& net, node a, node b,
                               double n_m_per_rad)
    : component(name, net), a_(a), b_(b), k_(n_m_per_rad) {
    network::check_nature(a, nature::mechanical_rotational, this->name());
    network::check_nature(b, nature::mechanical_rotational, this->name());
    util::require(n_m_per_rad > 0.0, this->name(), "stiffness must be positive");
}

void torsion_spring::stamp(network& net) {
    stamp_integral_branch(net, *this, a_, b_, 1.0 / k_);
}

// ------------------------------------------------------------- torque_source

torque_source::torque_source(const std::string& name, network& net, node p, node n,
                             waveform w)
    : component(name, net), p_(p), n_(n), wave_(std::move(w)) {
    network::check_nature(p, nature::mechanical_rotational, this->name());
    network::check_nature(n, nature::mechanical_rotational, this->name());
}

void torque_source::stamp(network& net) { stamp_waveform_flow(net, p_, n_, wave_); }

// ------------------------------------------------------- thermal_capacitance

thermal_capacitance::thermal_capacitance(const std::string& name, network& net, node n,
                                         double j_per_k)
    : component(name, net), n_(n), c_(j_per_k) {
    network::check_nature(n, nature::thermal, this->name());
    util::require(j_per_k > 0.0, this->name(), "heat capacity must be positive");
}

void thermal_capacitance::stamp(network& net) {
    net.stamp_capacitance(n_, net.ground(nature::thermal), c_);
}

// -------------------------------------------------------- thermal_resistance

thermal_resistance::thermal_resistance(const std::string& name, network& net, node a,
                                       node b, double k_per_w)
    : component(name, net), a_(a), b_(b), r_(k_per_w) {
    network::check_nature(a, nature::thermal, this->name());
    network::check_nature(b, nature::thermal, this->name());
    util::require(k_per_w > 0.0, this->name(), "thermal resistance must be positive");
}

void thermal_resistance::stamp(network& net) { net.stamp_conductance(a_, b_, 1.0 / r_); }

// --------------------------------------------------------------- heat_source

heat_source::heat_source(const std::string& name, network& net, node p, node n, waveform w)
    : component(name, net), p_(p), n_(n), wave_(std::move(w)) {
    network::check_nature(p, nature::thermal, this->name());
    network::check_nature(n, nature::thermal, this->name());
}

void heat_source::stamp(network& net) { stamp_waveform_flow(net, p_, n_, wave_); }

// ------------------------------------------------------------------ dc_motor

dc_motor::dc_motor(const std::string& name, network& net, node elec_p, node elec_n,
                   node shaft, double resistance, double inductance, double k_torque)
    : component(name, net), ep_(elec_p), en_(elec_n), shaft_(shaft), r_(resistance),
      l_(inductance), k_(k_torque) {
    network::check_nature(elec_p, nature::electrical, this->name());
    network::check_nature(elec_n, nature::electrical, this->name());
    network::check_nature(shaft, nature::mechanical_rotational, this->name());
    util::require(resistance > 0.0 && inductance > 0.0 && k_torque > 0.0, this->name(),
                  "motor parameters must be positive");
}

void dc_motor::stamp(network& net) {
    const std::size_t k = net.branch_row(*this);  // armature current
    const std::size_t rp = network::row_of(ep_);
    const std::size_t rn = network::row_of(en_);
    const std::size_t rw = network::row_of(shaft_);
    // Electrical KCL.
    net.add_a(rp, k, 1.0);
    net.add_a(rn, k, -1.0);
    // Armature branch: v_p - v_n - R i - L di/dt - K w = 0.
    net.add_a(k, rp, 1.0);
    net.add_a(k, rn, -1.0);
    net.add_a(k, k, -r_);
    net.add_b(k, k, -l_);
    net.add_a(k, rw, -k_);
    // Electromagnetic torque K*i injected into the shaft node.
    net.add_a(rw, k, -k_);
}

}  // namespace sca::eln
