#include "eln/line.hpp"

#include "util/report.hpp"

namespace sca::eln {

// ------------------------------------------------------------------ rc_line

rc_line::rc_line(const std::string& name, network& net, double r_total, double c_total,
                 std::size_t sections)
    : component(name, net), a("a", *this, nature::electrical),
      b("b", *this, nature::electrical), ref("ref", *this), r_total_(r_total),
      c_total_(c_total), sections_(sections) {
    util::require(r_total > 0.0 && c_total > 0.0, this->name(),
                  "line parameters must be positive");
    util::require(sections >= 1, this->name(), "at least one section required");
    for (std::size_t i = 0; i + 1 < sections; ++i) {
        internal_.push_back(
            net.create_node(this->name() + ".n" + std::to_string(i)));
    }
}

rc_line::rc_line(const std::string& name, network& net, node a_node, node b_node,
                 node ref_node, double r_total, double c_total, std::size_t sections)
    : rc_line(name, net, r_total, c_total, sections) {
    a.bind(a_node);
    b.bind(b_node);
    ref.bind(ref_node);
}

void rc_line::stamp(network& net) {
    const double g = static_cast<double>(sections_) / r_total_;  // per-section 1/R
    const double c = c_total_ / static_cast<double>(sections_);
    node prev = a.get();
    for (std::size_t i = 0; i < sections_; ++i) {
        const node next = i + 1 < sections_ ? internal_[i] : b.get();
        net.stamp_conductance(prev, next, g);
        // Shunt capacitance split at the section boundary.
        net.stamp_capacitance(next, ref.get(), c);
        prev = next;
    }
}

// ---------------------------------------------------------------- rlgc_line

rlgc_line::rlgc_line(const std::string& name, network& net, double r_total,
                     double l_total, double g_total, double c_total,
                     std::size_t sections)
    : component(name, net), a("a", *this, nature::electrical),
      b("b", *this, nature::electrical), ref("ref", *this), r_total_(r_total),
      l_total_(l_total), g_total_(g_total), c_total_(c_total), sections_(sections) {
    util::require(r_total >= 0.0 && l_total > 0.0 && g_total >= 0.0 && c_total > 0.0,
                  this->name(), "line parameters out of range");
    util::require(sections >= 1, this->name(), "at least one section required");
    // Two internal nodes per section (between R and L, and the chain node),
    // except the last chain node which is the b terminal.
    for (std::size_t i = 0; i < sections; ++i) {
        nodes_.push_back(net.create_node(this->name() + ".m" + std::to_string(i)));
        if (i + 1 < sections) {
            nodes_.push_back(net.create_node(this->name() + ".n" + std::to_string(i)));
        }
    }
}

rlgc_line::rlgc_line(const std::string& name, network& net, node a_node, node b_node,
                     node ref_node, double r_total, double l_total, double g_total,
                     double c_total, std::size_t sections)
    : rlgc_line(name, net, r_total, l_total, g_total, c_total, sections) {
    a.bind(a_node);
    b.bind(b_node);
    ref.bind(ref_node);
}

void rlgc_line::stamp(network& net) {
    const auto n = static_cast<double>(sections_);
    const double r = r_total_ / n;
    const double l = l_total_ / n;
    const double g_sh = g_total_ / n;
    const double c = c_total_ / n;

    node prev = a.get();
    std::size_t idx = 0;
    for (std::size_t i = 0; i < sections_; ++i) {
        const node mid = nodes_[idx++];
        const node next = i + 1 < sections_ ? nodes_[idx++] : b.get();
        // Series R then L.
        if (r > 0.0) {
            net.stamp_conductance(prev, mid, 1.0 / r);
        } else {
            // r == 0: collapse with a large conductance to keep MNA regular.
            net.stamp_conductance(prev, mid, 1e12);
        }
        const std::size_t k = net.branch_row(*this, "il" + std::to_string(i));
        net.add_a(network::row_of(mid), k, 1.0);
        net.add_a(network::row_of(next), k, -1.0);
        net.add_a(k, network::row_of(mid), 1.0);
        net.add_a(k, network::row_of(next), -1.0);
        net.add_b(k, k, -l);
        // Shunt G + C at the section end.
        if (g_sh > 0.0) net.stamp_conductance(next, ref.get(), g_sh);
        net.stamp_capacitance(next, ref.get(), c);
        prev = next;
    }
}

}  // namespace sca::eln
