// Hierarchical composition for conservative-law models: a subcircuit is a
// reusable block of network components exposing eln::terminal pins.
//
//   struct my_filter : eln::subcircuit {
//       eln::terminal in, out, ref;
//       eln::resistor r;
//       eln::capacitor c;
//       my_filter(const sca::de::module_name& nm, eln::network& net,
//                 double r_ohms, double c_farads)
//           : subcircuit(nm, net), in("in", *this), out("out", *this),
//             ref("ref", *this), r("r", net, r_ohms), c("c", net, c_farads) {
//           r.p(in);   // component pins forward to the subcircuit pins
//           r.n(out);
//           c.p(out);
//           c.n(ref);
//       }
//   };
//
//   my_filter f1("f1", net, 1e3, 100e-9);   // instantiable N times:
//   f1.in(vin); f1.out(vmid); f1.ref(gnd);  // internals are name-unique
//
// Internal nodes created through internal() are auto-prefixed with the
// instance's hierarchical path, so multiple instances never collide in the
// network's (unique) node namespace.  This file also ships the stock blocks
// the examples use: rc_lowpass, resistive_divider, and the lumped rc_ladder
// line model.
#ifndef SCA_ELN_SUBCIRCUIT_HPP
#define SCA_ELN_SUBCIRCUIT_HPP

#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/terminal.hpp"
#include "kernel/module.hpp"

namespace sca::eln {

/// Base class of composite ELN blocks.  A subcircuit is a structural module:
/// it owns components (as members or via make_child) that stamp into the
/// shared network, and exposes terminals for the enclosing level to bind.
class subcircuit : public de::module {
public:
    [[nodiscard]] const char* kind() const noexcept override { return "eln_subcircuit"; }

    [[nodiscard]] network& net() const noexcept { return *net_; }

protected:
    subcircuit(const de::module_name& nm, network& net) : de::module(nm), net_(&net) {}

    /// Create an internal node named "<instance-path>.<name>" — unique per
    /// instance by construction.
    [[nodiscard]] node internal(const std::string& name,
                                nature k = nature::electrical) {
        return net_->create_node(this->name() + "." + name, k);
    }

private:
    network* net_;
};

/// First-order RC lowpass: R from `in` to `out`, C from `out` to `ref`.
class rc_lowpass : public subcircuit {
public:
    terminal in, out, ref;

    rc_lowpass(const de::module_name& nm, network& net, double r_ohms, double c_farads);

    [[nodiscard]] resistor& r() noexcept { return r_; }
    [[nodiscard]] capacitor& c() noexcept { return c_; }

private:
    resistor r_;
    capacitor c_;
};

/// Resistive divider: r_top from `in` to `out`, r_bottom from `out` to `ref`.
class resistive_divider : public subcircuit {
public:
    terminal in, out, ref;

    resistive_divider(const de::module_name& nm, network& net, double r_top,
                      double r_bottom);

    [[nodiscard]] resistor& top() noexcept { return top_; }
    [[nodiscard]] resistor& bottom() noexcept { return bottom_; }

private:
    resistor top_;
    resistor bottom_;
};

/// Lumped RC transmission-line model: `sections` L-sections of series
/// resistance r_total/sections followed by shunt capacitance c_total/sections
/// to `ref`; the interior tap nodes are instance-unique internal nodes.
class rc_ladder : public subcircuit {
public:
    terminal a, b, ref;

    rc_ladder(const de::module_name& nm, network& net, unsigned sections, double r_total,
              double c_total);

    [[nodiscard]] unsigned sections() const noexcept { return sections_; }

private:
    unsigned sections_;
};

}  // namespace sca::eln

#endif  // SCA_ELN_SUBCIRCUIT_HPP
