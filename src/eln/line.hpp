// Distributed RC/RLC transmission-line approximations as lumped ladders —
// the subscriber-line macromodel of the paper's Figure 1 ("the system
// environment would be modelled as linear electrical networks").
//
// Like the primitives, lines expose their pins as bindable eln::terminal
// ports (a, b, ref), so they compose hierarchically with subcircuits; the
// legacy (network&, node, node, node) constructors remain as thin wrappers
// that bind the terminals immediately.
#ifndef SCA_ELN_LINE_HPP
#define SCA_ELN_LINE_HPP

#include <memory>
#include <vector>

#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/terminal.hpp"

namespace sca::eln {

/// N-section lumped RC approximation of a distributed line with total series
/// resistance `r_total` and total shunt capacitance `c_total` between the
/// `a` and `b` terminals (shunt elements return to `ref`).
class rc_line : public component {
public:
    terminal a, b, ref;

    rc_line(const std::string& name, network& net, double r_total, double c_total,
            std::size_t sections);
    rc_line(const std::string& name, network& net, node a, node b, node ref,
            double r_total, double c_total, std::size_t sections);

    void stamp(network& net) override;

    [[nodiscard]] std::size_t sections() const noexcept { return sections_; }
    /// Internal node `i` (0 .. sections-2), for probing along the line.
    [[nodiscard]] const node& internal(std::size_t i) const { return internal_.at(i); }

private:
    double r_total_, c_total_;
    std::size_t sections_;
    std::vector<node> internal_;
};

/// N-section lumped RLGC approximation: series R+L, shunt G+C per section.
/// The standard telegrapher's-equation discretization for lossy lines.
class rlgc_line : public component {
public:
    terminal a, b, ref;

    rlgc_line(const std::string& name, network& net, double r_total, double l_total,
              double g_total, double c_total, std::size_t sections);
    rlgc_line(const std::string& name, network& net, node a, node b, node ref,
              double r_total, double l_total, double g_total, double c_total,
              std::size_t sections);

    void stamp(network& net) override;

    [[nodiscard]] std::size_t sections() const noexcept { return sections_; }

private:
    double r_total_, l_total_, g_total_, c_total_;
    std::size_t sections_;
    std::vector<node> nodes_;                 // internal chain nodes
    std::vector<std::size_t> branch_suffix_;  // inductor branch ids per section
};

}  // namespace sca::eln

#endif  // SCA_ELN_LINE_HPP
