// Nonlinear network elements (paper phase 2: "support of non linear DAEs and
// their simulation using variable time steps", "formulation of implicit
// equations").  Adding any of these to a network switches the embedded solver
// to the variable-step Newton engine automatically.
//
// Every device exposes its pins as bindable eln::terminal ports following
// the primitives' wrapper pattern; the legacy node constructors remain as
// thin wrappers that bind the terminals immediately.
#ifndef SCA_ELN_NONLINEAR_HPP
#define SCA_ELN_NONLINEAR_HPP

#include <functional>

#include "eln/network.hpp"
#include "eln/terminal.hpp"

namespace sca::eln {

/// Shockley diode with exponential limiting for Newton robustness.
class diode : public component {
public:
    terminal a, c;  // anode, cathode

    diode(const std::string& name, network& net, double saturation_current = 1e-14,
          double emission_coefficient = 1.0);
    diode(const std::string& name, network& net, node anode, node cathode,
          double saturation_current = 1e-14, double emission_coefficient = 1.0);

    void stamp(network& net) override;

private:
    double is_;
    double n_;
};

/// Square-law NMOS transistor (level-1 style, continuous across regions).
class nmos : public component {
public:
    terminal d, g, s;

    /// `k` is the transconductance parameter (A/V^2), `vth` the threshold,
    /// `lambda` the channel-length modulation.
    nmos(const std::string& name, network& net, double k = 2e-3, double vth = 0.7,
         double lambda = 0.01);
    nmos(const std::string& name, network& net, node drain, node gate, node source,
         double k = 2e-3, double vth = 0.7, double lambda = 0.01);

    void stamp(network& net) override;

private:
    double k_, vth_, lambda_;
};

/// Square-law PMOS transistor (parameters given as positive quantities).
class pmos : public component {
public:
    terminal d, g, s;

    pmos(const std::string& name, network& net, double k = 1e-3, double vth = 0.7,
         double lambda = 0.01);
    pmos(const std::string& name, network& net, node drain, node gate, node source,
         double k = 1e-3, double vth = 0.7, double lambda = 0.01);

    void stamp(network& net) override;

private:
    double k_, vth_, lambda_;
};

/// General nonlinear voltage-controlled current source:
/// i(p->n) = f(v(cp) - v(cn)); the derivative is supplied by the model.
/// Useful for saturating amplifier characteristics and custom devices.
class nonlinear_vccs : public component {
public:
    terminal cp, cn, p, n;

    nonlinear_vccs(const std::string& name, network& net,
                   std::function<double(double)> f, std::function<double(double)> dfdv);
    nonlinear_vccs(const std::string& name, network& net, node cp, node cn, node p, node n,
                   std::function<double(double)> f, std::function<double(double)> dfdv);

    void stamp(network& net) override;

private:
    std::function<double(double)> f_;
    std::function<double(double)> dfdv_;
};

}  // namespace sca::eln

#endif  // SCA_ELN_NONLINEAR_HPP
