// Mixed-signal interface components: sources controlled from the TDF or DE
// worlds and probes feeding network quantities back to them (paper §3:
// conservative-law models couple to discrete-time models "by providing the
// appropriate interface models (mixed-signal or mixed-domain interfaces)").
//
// Like the primitives, converters expose their network pins as bindable
// eln::terminal ports (p/n); the legacy node constructors forward to them.
#ifndef SCA_ELN_CONVERTER_HPP
#define SCA_ELN_CONVERTER_HPP

#include "eln/network.hpp"
#include "eln/terminal.hpp"
#include "kernel/signal.hpp"
#include "tdf/port.hpp"
#include "util/bytes.hpp"

namespace sca::eln {

/// Voltage source whose value is the current TDF input sample.
class tdf_vsource : public component {
public:
    tdf_vsource(const std::string& name, network& net);
    tdf_vsource(const std::string& name, network& net, node p, node n);

    terminal p, n;

    /// The TDF input port; bind it to a tdf::signal<double>.
    tdf::in<double> inp;

    /// Scale factor applied to the TDF sample (default 1.0).
    void set_scale(double scale) noexcept { scale_ = scale; }

    void stamp(network& net) override;
    void read_tdf_inputs(network& net) override;

private:
    double scale_ = 1.0;
    std::size_t slot_ = 0;
};

/// Current source whose value is the current TDF input sample (p -> n).
class tdf_isource : public component {
public:
    tdf_isource(const std::string& name, network& net);
    tdf_isource(const std::string& name, network& net, node p, node n);

    terminal p, n;

    tdf::in<double> inp;

    void set_scale(double scale) noexcept { scale_ = scale; }

    void stamp(network& net) override;
    void read_tdf_inputs(network& net) override;

private:
    double scale_ = 1.0;
    std::size_t slot_p_ = 0;
    std::size_t slot_n_ = 0;
};

/// Voltage probe writing v(p) - v(n) to a TDF output each step.
class tdf_vsink : public component {
public:
    tdf_vsink(const std::string& name, network& net);
    tdf_vsink(const std::string& name, network& net, node a, node b);

    terminal p, n;

    tdf::out<double> outp;

    void stamp(network& net) override;
    void write_tdf_outputs(network& net) override;
};

/// Current probe (0 V branch) writing the branch current to a TDF output.
class tdf_isink : public component {
public:
    tdf_isink(const std::string& name, network& net);
    tdf_isink(const std::string& name, network& net, node a, node b);

    terminal p, n;

    tdf::out<double> outp;

    void stamp(network& net) override;
    void write_tdf_outputs(network& net) override;
};

/// Voltage source controlled by a DE signal (sampled at each activation).
class de_vsource : public component {
public:
    de_vsource(const std::string& name, network& net);
    de_vsource(const std::string& name, network& net, node p, node n);

    terminal p, n;

    de::in<double> inp;

    void stamp(network& net) override;
    void read_tdf_inputs(network& net) override;

private:
    std::size_t slot_ = 0;
};

/// Current source controlled by a DE signal (sampled at each activation;
/// current flows p -> n inside the source).
class de_isource : public component {
public:
    de_isource(const std::string& name, network& net);
    de_isource(const std::string& name, network& net, node p, node n);

    terminal p, n;

    de::in<double> inp;

    void stamp(network& net) override;
    void read_tdf_inputs(network& net) override;

private:
    std::size_t slot_p_ = 0;
    std::size_t slot_n_ = 0;
};

/// Voltage probe writing into a DE signal at each activation.
class de_vsink : public component {
public:
    de_vsink(const std::string& name, network& net);
    de_vsink(const std::string& name, network& net, node a, node b);

    terminal p, n;

    de::out<double> outp;

    void stamp(network&) override {}
    void write_tdf_outputs(network& net) override;
};

/// Switch controlled by a DE boolean signal (state is sampled at TDF
/// activation boundaries — the synchronization quantization documented in
/// DESIGN.md).  Both states stamp the same conductance pattern through one
/// stamp slot, so a toggle is a values-only update: the dirty matrix entries
/// are rewritten in place and the solver refactors numerically against its
/// cached symbolic analysis — the hot path of switching workloads.
class de_rswitch : public component {
public:
    de_rswitch(const std::string& name, network& net, double r_on = 1.0,
               double r_off = 1e9);
    de_rswitch(const std::string& name, network& net, node a, node b, double r_on = 1.0,
               double r_off = 1e9);

    terminal p, n;

    de::in<bool> ctrl;

    void stamp(network& net) override;
    stamp_change sample_inputs() override;

    [[nodiscard]] bool closed() const noexcept { return closed_; }

    // --- checkpoint/restore -------------------------------------------------
    // Switch position only, written directly so no value update is flagged
    // (the restored equation values already carry this position; see
    // eln::rswitch).  The next sample_inputs() then compares the DE control
    // against the true saved state, exactly as the uninterrupted run would.
    [[nodiscard]] bool has_snapshot_state() const noexcept override { return true; }
    void save_state(util::byte_writer& w) const override { w.boolean(closed_); }
    void restore_state(util::byte_reader& r) override { closed_ = r.boolean(); }

private:
    double r_on_, r_off_;
    bool closed_ = false;
    solver::stamp_handle slot_ = solver::no_stamp_handle;
};

}  // namespace sca::eln

#endif  // SCA_ELN_CONVERTER_HPP
