// Independent sources and their waveforms.
#ifndef SCA_ELN_SOURCES_HPP
#define SCA_ELN_SOURCES_HPP

#include <complex>
#include <functional>

#include "eln/network.hpp"
#include "eln/terminal.hpp"
#include "util/waveform.hpp"

namespace sca::eln {

/// Sources share the library-wide waveform descriptions.
using waveform = util::waveform;

/// Independent voltage source with optional AC stimulus magnitude/phase for
/// small-signal analysis and optional noise voltage PSD.
class vsource : public component {
public:
    terminal p, n;

    vsource(const std::string& name, network& net, waveform w);
    vsource(const std::string& name, network& net, node p, node n, waveform w);

    void stamp(network& net) override;

    /// AC stimulus (magnitude, phase in degrees) for frequency-domain runs.
    void set_ac(double magnitude, double phase_deg = 0.0);

    /// Flat voltage-noise PSD (V^2/Hz), e.g. for opamp input-referred noise.
    void set_noise_psd(std::function<double(double)> psd);

private:
    waveform wave_;
    double ac_mag_ = 0.0;
    double ac_phase_deg_ = 0.0;
    std::function<double(double)> noise_psd_;
};

/// Independent current source (current flows p -> n inside the source, i.e.
/// it is injected into node n).
class isource : public component {
public:
    terminal p, n;

    isource(const std::string& name, network& net, waveform w);
    isource(const std::string& name, network& net, node p, node n, waveform w);

    void stamp(network& net) override;
    void set_ac(double magnitude, double phase_deg = 0.0);
    void set_noise_psd(std::function<double(double)> psd);

private:
    waveform wave_;
    double ac_mag_ = 0.0;
    double ac_phase_deg_ = 0.0;
    std::function<double(double)> noise_psd_;
};

}  // namespace sca::eln

#endif  // SCA_ELN_SOURCES_HPP
