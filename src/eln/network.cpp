#include "eln/network.hpp"

#include <algorithm>

#include "eln/terminal.hpp"
#include "util/report.hpp"

namespace sca::eln {

component::component(std::string name, network& net)
    : de::object(std::move(name)), net_(&net) {
    net.register_component(*this);
}

component::~component() {
    if (net_ != nullptr) net_->unregister_component(*this);
}

network::~network() {
    for (component* c : components_) c->net_ = nullptr;
    for (terminal* t : terminals_) t->net_ = nullptr;
}

void network::unregister_component(component& c) {
    components_.erase(std::remove(components_.begin(), components_.end(), &c),
                      components_.end());
}

node network::create_node(const std::string& name, nature k) {
    util::require(node_names_.insert(name).second, this->name(),
                  "duplicate node name '" + name +
                      "': node names are unique per network (subcircuit-internal "
                      "nodes are auto-prefixed with the instance path)");
    const std::size_t index = raw_system().add_unknown("v(" + name + ")");
    nodes_.push_back({name, k});
    return node(this, index, k, /*ground=*/false);
}

void network::unregister_terminal(terminal& t) {
    terminals_.erase(std::remove(terminals_.begin(), terminals_.end(), &t),
                     terminals_.end());
}

void network::resolve_terminals() {
    for (terminal* t : terminals_) t->resolve();
}

node network::ground(nature k) { return node(this, 0, k, /*ground=*/true); }

double network::voltage(const node& n) const {
    if (n.is_ground()) return 0.0;
    // Before the first solver step (e.g. a tracer sampling at t=0 ahead of
    // the cluster) the across values are the zero quiescent defaults.
    if (n.index() >= state().size()) return 0.0;
    return state()[n.index()];
}

double network::voltage(const node& a, const node& b) const {
    return voltage(a) - voltage(b);
}

double network::current(const component& c) const {
    const std::size_t row = find_branch(c);
    util::require(row != ground_row, name(),
                  "component " + c.name() + " has no branch current unknown");
    if (row >= state().size()) return 0.0;
    return state()[row];
}

std::size_t network::branch_row(const component& c, const std::string& suffix) {
    const auto key = std::make_pair(&c, suffix);
    auto it = branch_rows_.find(key);
    if (it != branch_rows_.end()) return it->second;
    const std::size_t row =
        raw_system().add_unknown("i(" + c.name() + "." + suffix + ")");
    branch_rows_.emplace(key, row);
    primary_branch_.emplace(&c, row);  // keeps the first-requested branch
    return row;
}

std::size_t network::find_branch(const component& c) const {
    const auto it = primary_branch_.find(&c);
    return it == primary_branch_.end() ? ground_row : it->second;
}

void network::add_a(std::size_t r, std::size_t c, double v) {
    if (r == ground_row || c == ground_row) return;
    raw_system().add_a(r, c, v);
}

void network::add_b(std::size_t r, std::size_t c, double v) {
    if (r == ground_row || c == ground_row) return;
    raw_system().add_b(r, c, v);
}

void network::stamp_conductance(const node& a, const node& b, double g) {
    const std::size_t ra = row_of(a);
    const std::size_t rb = row_of(b);
    add_a(ra, ra, g);
    add_a(ra, rb, -g);
    add_a(rb, ra, -g);
    add_a(rb, rb, g);
}

void network::stamp_capacitance(const node& a, const node& b, double c) {
    const std::size_t ra = row_of(a);
    const std::size_t rb = row_of(b);
    add_b(ra, ra, c);
    add_b(ra, rb, -c);
    add_b(rb, ra, -c);
    add_b(rb, rb, c);
}

solver::stamp_handle network::add_stamp_slot(double initial_value) {
    return raw_system().add_stamp(initial_value);
}

void network::stamp_a_slot(solver::stamp_handle h, std::size_t r, std::size_t c,
                           double w) {
    if (r == ground_row || c == ground_row) return;
    raw_system().stamp_a(h, r, c, w);
}

void network::stamp_b_slot(solver::stamp_handle h, std::size_t r, std::size_t c,
                           double w) {
    if (r == ground_row || c == ground_row) return;
    raw_system().stamp_b(h, r, c, w);
}

void network::stamp_conductance_slot(solver::stamp_handle h, const node& a,
                                     const node& b) {
    const std::size_t ra = row_of(a);
    const std::size_t rb = row_of(b);
    stamp_a_slot(h, ra, ra, 1.0);
    stamp_a_slot(h, ra, rb, -1.0);
    stamp_a_slot(h, rb, ra, -1.0);
    stamp_a_slot(h, rb, rb, 1.0);
}

void network::stamp_capacitance_slot(solver::stamp_handle h, const node& a,
                                     const node& b) {
    const std::size_t ra = row_of(a);
    const std::size_t rb = row_of(b);
    stamp_b_slot(h, ra, ra, 1.0);
    stamp_b_slot(h, ra, rb, -1.0);
    stamp_b_slot(h, rb, ra, -1.0);
    stamp_b_slot(h, rb, rb, 1.0);
}

void network::update_stamp_value(solver::stamp_handle h, double v) {
    raw_system().set_stamp(h, v);
    request_value_update();
}

void network::add_rhs_constant(std::size_t r, double v) {
    if (r == ground_row) return;
    raw_system().add_rhs_constant(r, v);
}

void network::add_rhs_source(std::size_t r, std::function<double(double)> fn) {
    if (r == ground_row) return;
    raw_system().add_rhs_source(r, std::move(fn));
}

std::size_t network::add_input(std::size_t r) {
    if (r == ground_row) return std::numeric_limits<std::size_t>::max();
    return raw_system().add_input(r);
}

void network::set_input(std::size_t slot, double v) {
    if (slot == std::numeric_limits<std::size_t>::max()) return;
    raw_system().set_input(slot, v);
}

void network::add_ac_source(std::size_t r, std::complex<double> amplitude) {
    if (r == ground_row) return;
    raw_system().add_ac_source(r, amplitude);
}

void network::add_noise_between(const node& a, const node& b,
                                std::function<double(double)> psd, std::string name) {
    std::vector<std::pair<std::size_t, double>> injections;
    if (!a.is_ground()) injections.emplace_back(a.index(), -1.0);
    if (!b.is_ground()) injections.emplace_back(b.index(), 1.0);
    if (injections.empty()) return;
    raw_system().add_noise_source(std::move(injections), std::move(psd), std::move(name));
}

void network::check_nature(const node& n, nature expected, const std::string& who) {
    util::require(n.valid(), who, "terminal is not connected to a node");
    util::require(n.kind() == expected, who,
                  std::string("terminal nature mismatch: expected ") +
                      nature_name(expected) + ", got " + nature_name(n.kind()));
}

void network::build_equations() {
    resolve_terminals();
    for (component* c : components_) c->stamp(*this);
}

void network::read_inputs() {
    for (component* c : components_) {
        c->read_tdf_inputs(*this);
        switch (c->sample_inputs()) {
            case stamp_change::values:
                request_value_update();
                break;
            case stamp_change::topology:
                request_restamp();
                break;
            case stamp_change::none:
                break;
        }
    }
}

void network::write_outputs() {
    for (component* c : components_) c->write_tdf_outputs(*this);
}

}  // namespace sca::eln
