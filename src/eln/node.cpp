#include "eln/node.hpp"

namespace sca::eln {

const char* nature_name(nature n) noexcept {
    switch (n) {
        case nature::electrical:
            return "electrical";
        case nature::mechanical_translational:
            return "mechanical_translational";
        case nature::mechanical_rotational:
            return "mechanical_rotational";
        case nature::thermal:
            return "thermal";
    }
    return "unknown";
}

}  // namespace sca::eln
