#include "eln/nonlinear.hpp"

#include <cmath>

#include "util/report.hpp"

namespace sca::eln {

namespace {

constexpr double k_thermal_voltage = 0.025852;  // kT/q at 300 K

/// Fetch the value of an unknown from the iterate (0 for ground).
double value_of(const std::vector<double>& x, std::size_t row) {
    return row == ground_row ? 0.0 : x[row];
}

/// Scatter a current contribution I flowing out of row_p into row_n.
void add_current(std::vector<double>& residual, std::size_t rp, std::size_t rn, double i) {
    if (rp != ground_row) residual[rp] += i;
    if (rn != ground_row) residual[rn] -= i;
}

/// Scatter a conductance di/dv between the (p,n) current and (cp,cn) control.
void add_transconductance(std::vector<solver::jacobian_entry>& jac, std::size_t rp,
                          std::size_t rn, std::size_t rcp, std::size_t rcn, double g) {
    if (rp != ground_row && rcp != ground_row) jac.push_back({rp, rcp, g});
    if (rp != ground_row && rcn != ground_row) jac.push_back({rp, rcn, -g});
    if (rn != ground_row && rcp != ground_row) jac.push_back({rn, rcp, -g});
    if (rn != ground_row && rcn != ground_row) jac.push_back({rn, rcn, g});
}

}  // namespace

// --------------------------------------------------------------------- diode

diode::diode(const std::string& name, network& net, double saturation_current,
             double emission_coefficient)
    : component(name, net), a("a", *this), c("c", *this), is_(saturation_current),
      n_(emission_coefficient) {
    util::require(saturation_current > 0.0, this->name(),
                  "saturation current must be positive");
    util::require(emission_coefficient > 0.0, this->name(),
                  "emission coefficient must be positive");
}

diode::diode(const std::string& name, network& net, node anode, node cathode,
             double saturation_current, double emission_coefficient)
    : diode(name, net, saturation_current, emission_coefficient) {
    a.bind(anode);
    c.bind(cathode);
}

void diode::stamp(network& net) {
    const std::size_t ra = network::row_of(a.get());
    const std::size_t rc = network::row_of(c.get());
    const double is = is_;
    const double nvt = n_ * k_thermal_voltage;
    // Exponential limiting: above v_crit the exponential is continued
    // linearly, keeping Newton iterates finite.
    const double v_crit = 40.0 * nvt;
    net.equations().add_nonlinear(
        [ra, rc, is, nvt, v_crit](const std::vector<double>& x,
                                  std::vector<double>& residual,
                                  std::vector<solver::jacobian_entry>& jac) {
            const double vd = value_of(x, ra) - value_of(x, rc);
            double i = 0.0;
            double g = 0.0;
            if (vd <= v_crit) {
                const double e = std::exp(vd / nvt);
                i = is * (e - 1.0);
                g = is * e / nvt;
            } else {
                const double e = std::exp(v_crit / nvt);
                g = is * e / nvt;
                i = is * (e - 1.0) + g * (vd - v_crit);
            }
            add_current(residual, ra, rc, i);
            add_transconductance(jac, ra, rc, ra, rc, g);
        });
}

// ----------------------------------------------------------------- MOS common

namespace {

struct mos_eval {
    double id;     // drain current for vds >= 0
    double gm;     // d id / d vgs
    double gds;    // d id / d vds
};

mos_eval square_law(double vgs, double vds, double k, double vth, double lambda) {
    mos_eval e{0.0, 0.0, 0.0};
    const double vov = vgs - vth;
    if (vov <= 0.0) {
        // Subthreshold: tiny conductance keeps the Jacobian nonsingular.
        e.gds = 1e-12;
        e.id = 1e-12 * vds;
        return e;
    }
    if (vds < vov) {  // triode
        e.id = k * (vov * vds - 0.5 * vds * vds) * (1.0 + lambda * vds);
        e.gm = k * vds * (1.0 + lambda * vds);
        e.gds = k * (vov - vds) * (1.0 + lambda * vds) +
                k * (vov * vds - 0.5 * vds * vds) * lambda;
    } else {  // saturation
        e.id = 0.5 * k * vov * vov * (1.0 + lambda * vds);
        e.gm = k * vov * (1.0 + lambda * vds);
        e.gds = 0.5 * k * vov * vov * lambda;
    }
    e.gds += 1e-12;
    return e;
}

}  // namespace

// ---------------------------------------------------------------------- nmos

nmos::nmos(const std::string& name, network& net, double k, double vth, double lambda)
    : component(name, net), d("d", *this), g("g", *this), s("s", *this), k_(k),
      vth_(vth), lambda_(lambda) {}

nmos::nmos(const std::string& name, network& net, node drain, node gate, node source,
           double k, double vth, double lambda)
    : nmos(name, net, k, vth, lambda) {
    d.bind(drain);
    g.bind(gate);
    s.bind(source);
}

void nmos::stamp(network& net) {
    const std::size_t rd = network::row_of(d.get());
    const std::size_t rg = network::row_of(g.get());
    const std::size_t rs = network::row_of(s.get());
    const double k = k_, vth = vth_, lambda = lambda_;
    net.equations().add_nonlinear(
        [rd, rg, rs, k, vth, lambda](const std::vector<double>& x,
                                     std::vector<double>& residual,
                                     std::vector<solver::jacobian_entry>& jac) {
            double vgs = value_of(x, rg) - value_of(x, rs);
            double vds = value_of(x, rd) - value_of(x, rs);
            bool reversed = false;
            std::size_t eff_d = rd, eff_s = rs;
            if (vds < 0.0) {  // symmetric device: swap drain and source
                reversed = true;
                std::swap(eff_d, eff_s);
                vgs = value_of(x, rg) - value_of(x, eff_s);
                vds = -vds;
            }
            const mos_eval e = square_law(vgs, vds, k, vth, lambda);
            const double id = reversed ? -e.id : e.id;
            add_current(residual, rd, rs, id);
            // id depends on v_g, v_effd, v_effs:
            //   d id/d v_g = gm, d id/d v_d = gds, d id/d v_s = -(gm+gds)
            const double sign = reversed ? -1.0 : 1.0;
            auto add = [&](std::size_t col, double g) {
                if (col == ground_row || g == 0.0) return;
                if (rd != ground_row) jac.push_back({rd, col, sign * g});
                if (rs != ground_row) jac.push_back({rs, col, -sign * g});
            };
            add(rg, e.gm);
            add(eff_d, e.gds);
            add(eff_s, -(e.gm + e.gds));
        });
}

// ---------------------------------------------------------------------- pmos

pmos::pmos(const std::string& name, network& net, double k, double vth, double lambda)
    : component(name, net), d("d", *this), g("g", *this), s("s", *this), k_(k),
      vth_(vth), lambda_(lambda) {}

pmos::pmos(const std::string& name, network& net, node drain, node gate, node source,
           double k, double vth, double lambda)
    : pmos(name, net, k, vth, lambda) {
    d.bind(drain);
    g.bind(gate);
    s.bind(source);
}

void pmos::stamp(network& net) {
    const std::size_t rd = network::row_of(d.get());
    const std::size_t rg = network::row_of(g.get());
    const std::size_t rs = network::row_of(s.get());
    const double k = k_, vth = vth_, lambda = lambda_;
    // PMOS = NMOS with all node voltages negated: evaluate with vsg/vsd.
    net.equations().add_nonlinear(
        [rd, rg, rs, k, vth, lambda](const std::vector<double>& x,
                                     std::vector<double>& residual,
                                     std::vector<solver::jacobian_entry>& jac) {
            double vsg = value_of(x, rs) - value_of(x, rg);
            double vsd = value_of(x, rs) - value_of(x, rd);
            bool reversed = false;
            std::size_t eff_d = rd, eff_s = rs;
            if (vsd < 0.0) {
                reversed = true;
                std::swap(eff_d, eff_s);
                vsg = value_of(x, eff_s) - value_of(x, rg);
                vsd = -vsd;
            }
            const mos_eval e = square_law(vsg, vsd, k, vth, lambda);
            // Current flows source -> drain (out of rs into rd KCL-wise).
            const double id = reversed ? -e.id : e.id;
            add_current(residual, rs, rd, id);
            const double sign = reversed ? -1.0 : 1.0;
            auto add = [&](std::size_t col, double g) {
                if (col == ground_row || g == 0.0) return;
                if (rs != ground_row) jac.push_back({rs, col, sign * g});
                if (rd != ground_row) jac.push_back({rd, col, -sign * g});
            };
            // vsg = v_effs - v_g, vsd = v_effs - v_effd
            add(eff_s, e.gm + e.gds);
            add(rg, -e.gm);
            add(eff_d, -e.gds);
        });
}

// ------------------------------------------------------------ nonlinear_vccs

nonlinear_vccs::nonlinear_vccs(const std::string& name, network& net,
                               std::function<double(double)> f,
                               std::function<double(double)> dfdv)
    : component(name, net), cp("cp", *this), cn("cn", *this), p("p", *this),
      n("n", *this), f_(std::move(f)), dfdv_(std::move(dfdv)) {
    util::require(static_cast<bool>(f_) && static_cast<bool>(dfdv_), this->name(),
                  "model functions must not be null");
}

nonlinear_vccs::nonlinear_vccs(const std::string& name, network& net, node cp_node,
                               node cn_node, node p_node, node n_node,
                               std::function<double(double)> f,
                               std::function<double(double)> dfdv)
    : nonlinear_vccs(name, net, std::move(f), std::move(dfdv)) {
    cp.bind(cp_node);
    cn.bind(cn_node);
    p.bind(p_node);
    n.bind(n_node);
}

void nonlinear_vccs::stamp(network& net) {
    const std::size_t rp = network::row_of(p.get());
    const std::size_t rn = network::row_of(n.get());
    const std::size_t rcp = network::row_of(cp.get());
    const std::size_t rcn = network::row_of(cn.get());
    auto f = f_;
    auto dfdv = dfdv_;
    net.equations().add_nonlinear(
        [rp, rn, rcp, rcn, f, dfdv](const std::vector<double>& x,
                                    std::vector<double>& residual,
                                    std::vector<solver::jacobian_entry>& jac) {
            const double vc = value_of(x, rcp) - value_of(x, rcn);
            add_current(residual, rp, rn, f(vc));
            add_transconductance(jac, rp, rn, rcp, rcn, dfdv(vc));
        });
}

}  // namespace sca::eln
