#include "eln/primitives.hpp"

#include "solver/noise.hpp"
#include "util/report.hpp"

namespace sca::eln {

namespace {
/// Stamp a branch current unknown: KCL contributions of a current flowing
/// from `a` through the element to `b`.
void stamp_branch_kcl(network& net, std::size_t k, const node& a, const node& b) {
    net.add_a(network::row_of(a), k, 1.0);
    net.add_a(network::row_of(b), k, -1.0);
}
}  // namespace

// ------------------------------------------------------------------ resistor

resistor::resistor(const std::string& name, network& net, node a, node b, double ohms)
    : component(name, net), a_(a), b_(b), ohms_(ohms) {
    network::check_nature(a, nature::electrical, this->name());
    network::check_nature(b, nature::electrical, this->name());
    util::require(ohms > 0.0, this->name(), "resistance must be positive");
}

void resistor::stamp(network& net) {
    slot_ = net.add_stamp_slot(1.0 / ohms_);
    net.stamp_conductance_slot(slot_, a_, b_);
    if (noisy_) {
        const double temp = net.temperature();
        // The PSD reads the live resistance so values-only updates keep
        // noise analyses consistent without a restamp.
        net.add_noise_between(a_, b_,
                              [this, temp](double) {
                                  return 4.0 * solver::k_boltzmann * temp / ohms_;
                              },
                              name());
    }
}

void resistor::set_value(double ohms) {
    util::require(ohms > 0.0, name(), "resistance must be positive");
    if (ohms != ohms_) {
        ohms_ = ohms;
        if (slot_ != solver::no_stamp_handle) {
            net_->update_stamp_value(slot_, 1.0 / ohms_);
        }
    }
}

// ----------------------------------------------------------------- capacitor

capacitor::capacitor(const std::string& name, network& net, node a, node b, double farads)
    : component(name, net), a_(a), b_(b), farads_(farads) {
    network::check_nature(a, nature::electrical, this->name());
    network::check_nature(b, nature::electrical, this->name());
    util::require(farads > 0.0, this->name(), "capacitance must be positive");
}

void capacitor::stamp(network& net) {
    slot_ = net.add_stamp_slot(farads_);
    net.stamp_capacitance_slot(slot_, a_, b_);
}

void capacitor::set_value(double farads) {
    util::require(farads > 0.0, name(), "capacitance must be positive");
    if (farads != farads_) {
        farads_ = farads;
        if (slot_ != solver::no_stamp_handle) net_->update_stamp_value(slot_, farads_);
    }
}

// ------------------------------------------------------------------ inductor

inductor::inductor(const std::string& name, network& net, node a, node b, double henries)
    : component(name, net), a_(a), b_(b), henries_(henries) {
    network::check_nature(a, nature::electrical, this->name());
    network::check_nature(b, nature::electrical, this->name());
    util::require(henries > 0.0, this->name(), "inductance must be positive");
}

void inductor::stamp(network& net) {
    const std::size_t k = net.branch_row(*this);
    stamp_branch_kcl(net, k, a_, b_);
    // v_a - v_b - L di/dt = 0
    net.add_a(k, network::row_of(a_), 1.0);
    net.add_a(k, network::row_of(b_), -1.0);
    slot_ = net.add_stamp_slot(henries_);
    net.stamp_b_slot(slot_, k, k, -1.0);
}

void inductor::set_value(double henries) {
    util::require(henries > 0.0, name(), "inductance must be positive");
    if (henries != henries_) {
        henries_ = henries;
        if (slot_ != solver::no_stamp_handle) net_->update_stamp_value(slot_, henries_);
    }
}

// ---------------------------------------------------------------------- vcvs

vcvs::vcvs(const std::string& name, network& net, node cp, node cn, node p, node n,
           double gain)
    : component(name, net), cp_(cp), cn_(cn), p_(p), n_(n), gain_(gain) {}

void vcvs::stamp(network& net) {
    const std::size_t k = net.branch_row(*this);
    stamp_branch_kcl(net, k, p_, n_);
    // v_p - v_n - gain * (v_cp - v_cn) = 0
    net.add_a(k, network::row_of(p_), 1.0);
    net.add_a(k, network::row_of(n_), -1.0);
    slot_ = net.add_stamp_slot(gain_);
    net.stamp_a_slot(slot_, k, network::row_of(cp_), -1.0);
    net.stamp_a_slot(slot_, k, network::row_of(cn_), 1.0);
}

void vcvs::set_gain(double gain) {
    if (gain != gain_) {
        gain_ = gain;
        if (slot_ != solver::no_stamp_handle) net_->update_stamp_value(slot_, gain_);
    }
}

// ---------------------------------------------------------------------- vccs

vccs::vccs(const std::string& name, network& net, node cp, node cn, node p, node n,
           double gm)
    : component(name, net), cp_(cp), cn_(cn), p_(p), n_(n), gm_(gm) {}

void vccs::stamp(network& net) {
    // Current gm * v(cp,cn) flows from p through the source to n.
    slot_ = net.add_stamp_slot(gm_);
    net.stamp_a_slot(slot_, network::row_of(p_), network::row_of(cp_), 1.0);
    net.stamp_a_slot(slot_, network::row_of(p_), network::row_of(cn_), -1.0);
    net.stamp_a_slot(slot_, network::row_of(n_), network::row_of(cp_), -1.0);
    net.stamp_a_slot(slot_, network::row_of(n_), network::row_of(cn_), 1.0);
}

void vccs::set_gm(double gm) {
    if (gm != gm_) {
        gm_ = gm;
        if (slot_ != solver::no_stamp_handle) net_->update_stamp_value(slot_, gm_);
    }
}

// ---------------------------------------------------------------------- ccvs

ccvs::ccvs(const std::string& name, network& net, const component& control, node p, node n,
           double rm)
    : component(name, net), control_(&control), p_(p), n_(n), rm_(rm) {}

void ccvs::stamp(network& net) {
    const std::size_t k = net.branch_row(*this);
    const std::size_t j = net.branch_row(*control_);
    stamp_branch_kcl(net, k, p_, n_);
    // v_p - v_n - rm * i_j = 0
    net.add_a(k, network::row_of(p_), 1.0);
    net.add_a(k, network::row_of(n_), -1.0);
    net.add_a(k, j, -rm_);
}

// ---------------------------------------------------------------------- cccs

cccs::cccs(const std::string& name, network& net, const component& control, node p, node n,
           double beta)
    : component(name, net), control_(&control), p_(p), n_(n), beta_(beta) {}

void cccs::stamp(network& net) {
    const std::size_t j = net.branch_row(*control_);
    // Current beta * i_j flows from p through the source to n.
    net.add_a(network::row_of(p_), j, beta_);
    net.add_a(network::row_of(n_), j, -beta_);
}

// --------------------------------------------------------- ideal transformer

ideal_transformer::ideal_transformer(const std::string& name, network& net, node p1,
                                     node n1, node p2, node n2, double ratio)
    : component(name, net), p1_(p1), n1_(n1), p2_(p2), n2_(n2), ratio_(ratio) {
    util::require(ratio != 0.0, this->name(), "transformer ratio must be nonzero");
}

void ideal_transformer::stamp(network& net) {
    // One branch unknown: primary current i1; secondary current = -ratio*i1.
    const std::size_t k = net.branch_row(*this);
    net.add_a(network::row_of(p1_), k, 1.0);
    net.add_a(network::row_of(n1_), k, -1.0);
    net.add_a(network::row_of(p2_), k, -ratio_);
    net.add_a(network::row_of(n2_), k, ratio_);
    // v1 = ratio * v2:  v_p1 - v_n1 - ratio (v_p2 - v_n2) = 0
    net.add_a(k, network::row_of(p1_), 1.0);
    net.add_a(k, network::row_of(n1_), -1.0);
    net.add_a(k, network::row_of(p2_), -ratio_);
    net.add_a(k, network::row_of(n2_), ratio_);
}

// ------------------------------------------------------------------- rswitch

rswitch::rswitch(const std::string& name, network& net, node a, node b, double r_on,
                 double r_off, bool closed)
    : component(name, net), a_(a), b_(b), r_on_(r_on), r_off_(r_off), closed_(closed) {
    util::require(r_on > 0.0 && r_off > r_on, this->name(),
                  "switch requires 0 < r_on < r_off");
}

void rswitch::stamp(network& net) {
    slot_ = net.add_stamp_slot(1.0 / (closed_ ? r_on_ : r_off_));
    net.stamp_conductance_slot(slot_, a_, b_);
}

void rswitch::set_state(bool closed) {
    if (closed != closed_) {
        closed_ = closed;
        if (slot_ != solver::no_stamp_handle) {
            net_->update_stamp_value(slot_, 1.0 / (closed_ ? r_on_ : r_off_));
        }
    }
}

// --------------------------------------------------------------- ideal_opamp

ideal_opamp::ideal_opamp(const std::string& name, network& net, node inp, node inn,
                         node out)
    : component(name, net), inp_(inp), inn_(inn), out_(out) {
    network::check_nature(inp, nature::electrical, this->name());
    network::check_nature(inn, nature::electrical, this->name());
    network::check_nature(out, nature::electrical, this->name());
}

void ideal_opamp::stamp(network& net) {
    // Nullor stamp: one unknown (the output current), one constraint row
    // (virtual short between the inputs). The inputs draw no current.
    const std::size_t k = net.branch_row(*this, "iout");
    net.add_a(network::row_of(out_), k, 1.0);
    net.add_a(k, network::row_of(inp_), 1.0);
    net.add_a(k, network::row_of(inn_), -1.0);
}

// ------------------------------------------------------------------- gyrator

gyrator::gyrator(const std::string& name, network& net, node p1, node n1, node p2,
                 node n2, double g)
    : component(name, net), p1_(p1), n1_(n1), p2_(p2), n2_(n2), g_(g) {
    util::require(g != 0.0, this->name(), "gyration conductance must be nonzero");
}

void gyrator::stamp(network& net) {
    // i(port1) = g * v(port2): a VCCS from port 2 voltage into port 1 ...
    const std::size_t rp1 = network::row_of(p1_);
    const std::size_t rn1 = network::row_of(n1_);
    const std::size_t rp2 = network::row_of(p2_);
    const std::size_t rn2 = network::row_of(n2_);
    net.add_a(rp1, rp2, g_);
    net.add_a(rp1, rn2, -g_);
    net.add_a(rn1, rp2, -g_);
    net.add_a(rn1, rn2, g_);
    // ... and i(port2) = -g * v(port1).
    net.add_a(rp2, rp1, -g_);
    net.add_a(rp2, rn1, g_);
    net.add_a(rn2, rp1, g_);
    net.add_a(rn2, rn1, -g_);
}

// ------------------------------------------------------------------- ammeter

ammeter::ammeter(const std::string& name, network& net, node a, node b)
    : component(name, net), a_(a), b_(b) {}

void ammeter::stamp(network& net) {
    const std::size_t k = net.branch_row(*this);
    stamp_branch_kcl(net, k, a_, b_);
    // 0 V across:  v_a - v_b = 0
    net.add_a(k, network::row_of(a_), 1.0);
    net.add_a(k, network::row_of(b_), -1.0);
}

}  // namespace sca::eln
