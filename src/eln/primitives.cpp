#include "eln/primitives.hpp"

#include "solver/noise.hpp"
#include "util/report.hpp"

namespace sca::eln {

namespace {
/// Stamp a branch current unknown: KCL contributions of a current flowing
/// from `a` through the element to `b`.
void stamp_branch_kcl(network& net, std::size_t k, const node& a, const node& b) {
    net.add_a(network::row_of(a), k, 1.0);
    net.add_a(network::row_of(b), k, -1.0);
}
}  // namespace

// ------------------------------------------------------------------ resistor

resistor::resistor(const std::string& name, network& net, double ohms)
    : component(name, net), p("p", *this, nature::electrical),
      n("n", *this, nature::electrical), ohms_(ohms) {
    util::require(ohms > 0.0, this->name(), "resistance must be positive");
}

resistor::resistor(const std::string& name, network& net, node a, node b, double ohms)
    : resistor(name, net, ohms) {
    p.bind(a);
    n.bind(b);
}

void resistor::stamp(network& net) {
    slot_ = net.add_stamp_slot(1.0 / ohms_);
    net.stamp_conductance_slot(slot_, p.get(), n.get());
    if (noisy_) {
        const double temp = net.temperature();
        // The PSD reads the live resistance so values-only updates keep
        // noise analyses consistent without a restamp.
        net.add_noise_between(p.get(), n.get(),
                              [this, temp](double) {
                                  return 4.0 * solver::k_boltzmann * temp / ohms_;
                              },
                              name());
    }
}

void resistor::set_value(double ohms) {
    util::require(ohms > 0.0, name(), "resistance must be positive");
    if (ohms != ohms_) {
        ohms_ = ohms;
        if (slot_ != solver::no_stamp_handle) {
            net_->update_stamp_value(slot_, 1.0 / ohms_);
        }
    }
}

// ----------------------------------------------------------------- capacitor

capacitor::capacitor(const std::string& name, network& net, double farads)
    : component(name, net), p("p", *this, nature::electrical),
      n("n", *this, nature::electrical), farads_(farads) {
    util::require(farads > 0.0, this->name(), "capacitance must be positive");
}

capacitor::capacitor(const std::string& name, network& net, node a, node b, double farads)
    : capacitor(name, net, farads) {
    p.bind(a);
    n.bind(b);
}

void capacitor::stamp(network& net) {
    slot_ = net.add_stamp_slot(farads_);
    net.stamp_capacitance_slot(slot_, p.get(), n.get());
}

void capacitor::set_value(double farads) {
    util::require(farads > 0.0, name(), "capacitance must be positive");
    if (farads != farads_) {
        farads_ = farads;
        if (slot_ != solver::no_stamp_handle) net_->update_stamp_value(slot_, farads_);
    }
}

// ------------------------------------------------------------------ inductor

inductor::inductor(const std::string& name, network& net, double henries)
    : component(name, net), p("p", *this, nature::electrical),
      n("n", *this, nature::electrical), henries_(henries) {
    util::require(henries > 0.0, this->name(), "inductance must be positive");
}

inductor::inductor(const std::string& name, network& net, node a, node b, double henries)
    : inductor(name, net, henries) {
    p.bind(a);
    n.bind(b);
}

void inductor::stamp(network& net) {
    const std::size_t k = net.branch_row(*this);
    stamp_branch_kcl(net, k, p.get(), n.get());
    // v_a - v_b - L di/dt = 0
    net.add_a(k, network::row_of(p.get()), 1.0);
    net.add_a(k, network::row_of(n.get()), -1.0);
    slot_ = net.add_stamp_slot(henries_);
    net.stamp_b_slot(slot_, k, k, -1.0);
}

void inductor::set_value(double henries) {
    util::require(henries > 0.0, name(), "inductance must be positive");
    if (henries != henries_) {
        henries_ = henries;
        if (slot_ != solver::no_stamp_handle) net_->update_stamp_value(slot_, henries_);
    }
}

// ---------------------------------------------------------------------- vcvs

vcvs::vcvs(const std::string& name, network& net, double gain)
    : component(name, net), cp("cp", *this), cn("cn", *this), p("p", *this),
      n("n", *this), gain_(gain) {}

vcvs::vcvs(const std::string& name, network& net, node cp_node, node cn_node,
           node p_node, node n_node, double gain)
    : vcvs(name, net, gain) {
    cp.bind(cp_node);
    cn.bind(cn_node);
    p.bind(p_node);
    n.bind(n_node);
}

void vcvs::stamp(network& net) {
    const std::size_t k = net.branch_row(*this);
    stamp_branch_kcl(net, k, p.get(), n.get());
    // v_p - v_n - gain * (v_cp - v_cn) = 0
    net.add_a(k, network::row_of(p.get()), 1.0);
    net.add_a(k, network::row_of(n.get()), -1.0);
    slot_ = net.add_stamp_slot(gain_);
    net.stamp_a_slot(slot_, k, network::row_of(cp.get()), -1.0);
    net.stamp_a_slot(slot_, k, network::row_of(cn.get()), 1.0);
}

void vcvs::set_gain(double gain) {
    if (gain != gain_) {
        gain_ = gain;
        if (slot_ != solver::no_stamp_handle) net_->update_stamp_value(slot_, gain_);
    }
}

// ---------------------------------------------------------------------- vccs

vccs::vccs(const std::string& name, network& net, double gm)
    : component(name, net), cp("cp", *this), cn("cn", *this), p("p", *this),
      n("n", *this), gm_(gm) {}

vccs::vccs(const std::string& name, network& net, node cp_node, node cn_node,
           node p_node, node n_node, double gm)
    : vccs(name, net, gm) {
    cp.bind(cp_node);
    cn.bind(cn_node);
    p.bind(p_node);
    n.bind(n_node);
}

void vccs::stamp(network& net) {
    // Current gm * v(cp,cn) flows from p through the source to n.
    slot_ = net.add_stamp_slot(gm_);
    net.stamp_a_slot(slot_, network::row_of(p.get()), network::row_of(cp.get()), 1.0);
    net.stamp_a_slot(slot_, network::row_of(p.get()), network::row_of(cn.get()), -1.0);
    net.stamp_a_slot(slot_, network::row_of(n.get()), network::row_of(cp.get()), -1.0);
    net.stamp_a_slot(slot_, network::row_of(n.get()), network::row_of(cn.get()), 1.0);
}

void vccs::set_gm(double gm) {
    if (gm != gm_) {
        gm_ = gm;
        if (slot_ != solver::no_stamp_handle) net_->update_stamp_value(slot_, gm_);
    }
}

// ---------------------------------------------------------------------- ccvs

ccvs::ccvs(const std::string& name, network& net, const component& control, double rm)
    : component(name, net), p("p", *this), n("n", *this), control_(&control), rm_(rm) {}

ccvs::ccvs(const std::string& name, network& net, const component& control, node p_node,
           node n_node, double rm)
    : ccvs(name, net, control, rm) {
    p.bind(p_node);
    n.bind(n_node);
}

void ccvs::stamp(network& net) {
    const std::size_t k = net.branch_row(*this);
    const std::size_t j = net.branch_row(*control_);
    stamp_branch_kcl(net, k, p.get(), n.get());
    // v_p - v_n - rm * i_j = 0
    net.add_a(k, network::row_of(p.get()), 1.0);
    net.add_a(k, network::row_of(n.get()), -1.0);
    net.add_a(k, j, -rm_);
}

// ---------------------------------------------------------------------- cccs

cccs::cccs(const std::string& name, network& net, const component& control, double beta)
    : component(name, net), p("p", *this), n("n", *this), control_(&control),
      beta_(beta) {}

cccs::cccs(const std::string& name, network& net, const component& control, node p_node,
           node n_node, double beta)
    : cccs(name, net, control, beta) {
    p.bind(p_node);
    n.bind(n_node);
}

void cccs::stamp(network& net) {
    const std::size_t j = net.branch_row(*control_);
    // Current beta * i_j flows from p through the source to n.
    net.add_a(network::row_of(p.get()), j, beta_);
    net.add_a(network::row_of(n.get()), j, -beta_);
}

// --------------------------------------------------------- ideal transformer

ideal_transformer::ideal_transformer(const std::string& name, network& net, double ratio)
    : component(name, net), p1("p1", *this), n1("n1", *this), p2("p2", *this),
      n2("n2", *this), ratio_(ratio) {
    util::require(ratio != 0.0, this->name(), "transformer ratio must be nonzero");
}

ideal_transformer::ideal_transformer(const std::string& name, network& net, node p1_node,
                                     node n1_node, node p2_node, node n2_node,
                                     double ratio)
    : ideal_transformer(name, net, ratio) {
    p1.bind(p1_node);
    n1.bind(n1_node);
    p2.bind(p2_node);
    n2.bind(n2_node);
}

void ideal_transformer::stamp(network& net) {
    // One branch unknown: primary current i1; secondary current = -ratio*i1.
    const std::size_t k = net.branch_row(*this);
    net.add_a(network::row_of(p1.get()), k, 1.0);
    net.add_a(network::row_of(n1.get()), k, -1.0);
    net.add_a(network::row_of(p2.get()), k, -ratio_);
    net.add_a(network::row_of(n2.get()), k, ratio_);
    // v1 = ratio * v2:  v_p1 - v_n1 - ratio (v_p2 - v_n2) = 0
    net.add_a(k, network::row_of(p1.get()), 1.0);
    net.add_a(k, network::row_of(n1.get()), -1.0);
    net.add_a(k, network::row_of(p2.get()), -ratio_);
    net.add_a(k, network::row_of(n2.get()), ratio_);
}

// ------------------------------------------------------------------- rswitch

rswitch::rswitch(const std::string& name, network& net, double r_on, double r_off,
                 bool closed)
    : component(name, net), p("p", *this), n("n", *this), r_on_(r_on), r_off_(r_off),
      closed_(closed) {
    util::require(r_on > 0.0 && r_off > r_on, this->name(),
                  "switch requires 0 < r_on < r_off");
}

rswitch::rswitch(const std::string& name, network& net, node a, node b, double r_on,
                 double r_off, bool closed)
    : rswitch(name, net, r_on, r_off, closed) {
    p.bind(a);
    n.bind(b);
}

void rswitch::stamp(network& net) {
    slot_ = net.add_stamp_slot(1.0 / (closed_ ? r_on_ : r_off_));
    net.stamp_conductance_slot(slot_, p.get(), n.get());
}

void rswitch::set_state(bool closed) {
    if (closed != closed_) {
        closed_ = closed;
        if (slot_ != solver::no_stamp_handle) {
            net_->update_stamp_value(slot_, 1.0 / (closed_ ? r_on_ : r_off_));
        }
    }
}

// --------------------------------------------------------------- ideal_opamp

ideal_opamp::ideal_opamp(const std::string& name, network& net)
    : component(name, net), inp("inp", *this, nature::electrical),
      inn("inn", *this, nature::electrical), out("out", *this, nature::electrical) {}

ideal_opamp::ideal_opamp(const std::string& name, network& net, node inp_node,
                         node inn_node, node out_node)
    : ideal_opamp(name, net) {
    inp.bind(inp_node);
    inn.bind(inn_node);
    out.bind(out_node);
}

void ideal_opamp::stamp(network& net) {
    // Nullor stamp: one unknown (the output current), one constraint row
    // (virtual short between the inputs). The inputs draw no current.
    const std::size_t k = net.branch_row(*this, "iout");
    net.add_a(network::row_of(out.get()), k, 1.0);
    net.add_a(k, network::row_of(inp.get()), 1.0);
    net.add_a(k, network::row_of(inn.get()), -1.0);
}

// ------------------------------------------------------------------- gyrator

gyrator::gyrator(const std::string& name, network& net, double g)
    : component(name, net), p1("p1", *this), n1("n1", *this), p2("p2", *this),
      n2("n2", *this), g_(g) {
    util::require(g != 0.0, this->name(), "gyration conductance must be nonzero");
}

gyrator::gyrator(const std::string& name, network& net, node p1_node, node n1_node,
                 node p2_node, node n2_node, double g)
    : gyrator(name, net, g) {
    p1.bind(p1_node);
    n1.bind(n1_node);
    p2.bind(p2_node);
    n2.bind(n2_node);
}

void gyrator::stamp(network& net) {
    // i(port1) = g * v(port2): a VCCS from port 2 voltage into port 1 ...
    const std::size_t rp1 = network::row_of(p1.get());
    const std::size_t rn1 = network::row_of(n1.get());
    const std::size_t rp2 = network::row_of(p2.get());
    const std::size_t rn2 = network::row_of(n2.get());
    net.add_a(rp1, rp2, g_);
    net.add_a(rp1, rn2, -g_);
    net.add_a(rn1, rp2, -g_);
    net.add_a(rn1, rn2, g_);
    // ... and i(port2) = -g * v(port1).
    net.add_a(rp2, rp1, -g_);
    net.add_a(rp2, rn1, g_);
    net.add_a(rn2, rp1, g_);
    net.add_a(rn2, rn1, -g_);
}

// ------------------------------------------------------------------- ammeter

ammeter::ammeter(const std::string& name, network& net)
    : component(name, net), p("p", *this), n("n", *this) {}

ammeter::ammeter(const std::string& name, network& net, node a, node b)
    : ammeter(name, net) {
    p.bind(a);
    n.bind(b);
}

void ammeter::stamp(network& net) {
    const std::size_t k = net.branch_row(*this);
    stamp_branch_kcl(net, k, p.get(), n.get());
    // 0 V across:  v_a - v_b = 0
    net.add_a(k, network::row_of(p.get()), 1.0);
    net.add_a(k, network::row_of(n.get()), -1.0);
}

}  // namespace sca::eln
