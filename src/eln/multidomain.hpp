// Multi-domain conservative components (paper phase 3: "Support of
// conservative-law models ... enrichment of the mixed-signal library with
// conservative-law mixed-domain models").
//
// Mechanical and thermal elements map onto the same MNA core through the
// classical force-current (mobility) analogy:
//
//   domain        across          through        C-like     R-like    L-like
//   mech. trans.  velocity m/s    force N        mass       damper    spring
//   mech. rot.    ang.vel rad/s   torque N*m     inertia    damper    spring
//   thermal       temperature K   heat flow W    heat cap.  R_th      (none)
//
// Every component exposes its pins as bindable eln::terminal ports carrying
// the expected nature, so cross-domain connections are rejected at bind time
// except through explicit transducers (dc_motor couples the electrical and
// rotational disciplines).  The legacy node constructors remain as thin
// wrappers that bind the terminals immediately.
#ifndef SCA_ELN_MULTIDOMAIN_HPP
#define SCA_ELN_MULTIDOMAIN_HPP

#include "eln/network.hpp"
#include "eln/sources.hpp"
#include "eln/terminal.hpp"
#include "tdf/port.hpp"

namespace sca::eln {

// ------------------------------------------------------ translational domain

/// Point mass: F = m * dv/dt against the inertial reference (ground).
class mass : public component {
public:
    terminal p;

    mass(const std::string& name, network& net, double kilograms);
    mass(const std::string& name, network& net, node n, double kilograms);
    void stamp(network& net) override;

private:
    double m_;
};

/// Viscous damper between two velocity nodes: F = d * (v_a - v_b).
class damper : public component {
public:
    terminal a, b;

    damper(const std::string& name, network& net, double n_s_per_m);
    damper(const std::string& name, network& net, node a, node b, double n_s_per_m);
    void stamp(network& net) override;

private:
    double d_;
};

/// Ideal spring: F = k * integral(v_a - v_b) dt (owns a force unknown).
class spring : public component {
public:
    terminal a, b;

    spring(const std::string& name, network& net, double n_per_m);
    spring(const std::string& name, network& net, node a, node b, double n_per_m);
    void stamp(network& net) override;

private:
    double k_;
};

/// External force applied between two velocity nodes (p -> n).
class force_source : public component {
public:
    terminal p, n;

    force_source(const std::string& name, network& net, waveform w);
    force_source(const std::string& name, network& net, node p, node n, waveform w);
    void stamp(network& net) override;

private:
    waveform wave_;
};

/// Position probe: integrates a node's velocity into an extra unknown and
/// exposes it as a TDF output sample stream.
class position_probe : public component {
public:
    terminal p;
    tdf::out<double> outp;

    position_probe(const std::string& name, network& net);
    position_probe(const std::string& name, network& net, node n);

    void stamp(network& net) override;
    void write_tdf_outputs(network& net) override;

    /// Position unknown index (for direct probing / AC analysis).
    [[nodiscard]] std::size_t position_row() const noexcept { return row_; }

private:
    std::size_t row_ = 0;
};

// --------------------------------------------------------- rotational domain

/// Rotational inertia: T = J * dw/dt against the reference frame.
class inertia : public component {
public:
    terminal p;

    inertia(const std::string& name, network& net, double kg_m2);
    inertia(const std::string& name, network& net, node n, double kg_m2);
    void stamp(network& net) override;

private:
    double j_;
};

/// Rotational damper (friction): T = d * (w_a - w_b).
class rotational_damper : public component {
public:
    terminal a, b;

    rotational_damper(const std::string& name, network& net, double n_m_s_per_rad);
    rotational_damper(const std::string& name, network& net, node a, node b,
                      double n_m_s_per_rad);
    void stamp(network& net) override;

private:
    double d_;
};

/// Torsion spring: T = k * integral(w_a - w_b) dt.
class torsion_spring : public component {
public:
    terminal a, b;

    torsion_spring(const std::string& name, network& net, double n_m_per_rad);
    torsion_spring(const std::string& name, network& net, node a, node b,
                   double n_m_per_rad);
    void stamp(network& net) override;

private:
    double k_;
};

/// External torque source (p -> n).
class torque_source : public component {
public:
    terminal p, n;

    torque_source(const std::string& name, network& net, waveform w);
    torque_source(const std::string& name, network& net, node p, node n, waveform w);
    void stamp(network& net) override;

private:
    waveform wave_;
};

// ------------------------------------------------------------ thermal domain

/// Thermal capacitance: P = C * dT/dt against ambient (thermal ground).
class thermal_capacitance : public component {
public:
    terminal p;

    thermal_capacitance(const std::string& name, network& net, double j_per_k);
    thermal_capacitance(const std::string& name, network& net, node n, double j_per_k);
    void stamp(network& net) override;

private:
    double c_;
};

/// Thermal resistance: P = (T_a - T_b) / R_th.
class thermal_resistance : public component {
public:
    terminal a, b;

    thermal_resistance(const std::string& name, network& net, double k_per_w);
    thermal_resistance(const std::string& name, network& net, node a, node b,
                       double k_per_w);
    void stamp(network& net) override;

private:
    double r_;
};

/// Heat flow source (dissipation injected into a thermal node).
class heat_source : public component {
public:
    terminal p, n;

    heat_source(const std::string& name, network& net, waveform w);
    heat_source(const std::string& name, network& net, node p, node n, waveform w);
    void stamp(network& net) override;

private:
    waveform wave_;
};

// ------------------------------------------------------------ electro-mech --

/// Permanent-magnet DC motor: couples the electrical armature circuit with a
/// rotational shaft node.  v = R i + L di/dt + K w,  T = K i.
class dc_motor : public component {
public:
    terminal p, n, shaft;

    dc_motor(const std::string& name, network& net, double resistance,
             double inductance, double k_torque);
    dc_motor(const std::string& name, network& net, node elec_p, node elec_n, node shaft,
             double resistance, double inductance, double k_torque);

    void stamp(network& net) override;

    /// Armature current unknown (probe via network::current(*this)).

private:
    double r_, l_, k_;
};

}  // namespace sca::eln

#endif  // SCA_ELN_MULTIDOMAIN_HPP
