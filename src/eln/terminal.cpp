#include "eln/terminal.hpp"

#include "eln/network.hpp"
#include "eln/subcircuit.hpp"
#include "util/report.hpp"

namespace sca::eln {

terminal::terminal(std::string name, de::object& owner, network& net,
                   std::optional<nature> expected)
    : de::object(std::move(name), owner), net_(&net), expected_(expected) {
    net.register_terminal(*this);
}

terminal::terminal(std::string name, component& owner)
    : terminal(std::move(name), owner, owner.net(), std::nullopt) {}

terminal::terminal(std::string name, component& owner, nature expected)
    : terminal(std::move(name), owner, owner.net(), expected) {}

terminal::terminal(std::string name, subcircuit& owner)
    : terminal(std::move(name), owner, owner.net(), std::nullopt) {}

terminal::terminal(std::string name, subcircuit& owner, nature expected)
    : terminal(std::move(name), owner, owner.net(), expected) {}

terminal::~terminal() {
    if (net_ != nullptr) net_->unregister_terminal(*this);
}

void terminal::check_node(const node& n) const {
    util::require(n.valid(), name(), "cannot bind an invalid node handle");
    util::require(n.net() == net_, name(),
                  "node belongs to a different network (" + n.net()->name() +
                      ") than this terminal's owner (" + net_->name() + ")");
    if (expected_) network::check_nature(n, *expected_, name());
}

void terminal::bind(const node& n) {
    util::require(!is_bound(), name(),
                  "ELN terminal is already bound; a terminal binds exactly one "
                  "node or parent terminal");
    check_node(n);
    node_ = n;
    has_node_ = true;
}

void terminal::bind(terminal& t) {
    util::require(!is_bound(), name(),
                  "ELN terminal is already bound; a terminal binds exactly one "
                  "node or parent terminal");
    util::require(&t != this, name(), "ELN terminal cannot forward to itself");
    util::require(t.net_ == net_, name(),
                  "terminal belongs to a different network (" + t.net_->name() +
                      ") than this terminal's owner (" + net_->name() + ")");
    forward_ = &t;
}

void terminal::resolve() {
    if (has_node_) return;
    // Follow the forwarding chain; targets need not be resolved yet.
    const terminal* t = this;
    int hops = 0;
    while (!t->has_node_ && t->forward_ != nullptr) {
        t = t->forward_;
        util::require(++hops < 1024, name(), "ELN terminal binding cycle detected");
    }
    util::require(t->has_node_, name(),
                  t == this ? "unbound ELN terminal"
                            : "unbound ELN terminal (forwarding chain ends at " +
                                  t->name() + " without reaching a node)");
    check_node(t->node_);
    node_ = t->node_;
    has_node_ = true;
}

const node& terminal::get() const {
    util::require(has_node_, name(),
                  "ELN terminal is not resolved to a node yet (bind it and "
                  "elaborate first)");
    return node_;
}

}  // namespace sca::eln
