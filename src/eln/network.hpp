// The conservative-law network view (paper §3: "SystemC-AMS must support the
// description and the simulation of continuous-time systems as
// conservative-law models").
//
// A network is a TDF module embedding a linear (or nonlinear) DAE assembled
// by Modified Nodal Analysis: one KCL row per non-ground node, one branch
// row per voltage-defined element (sources, inductors, transformers).  The
// network advances one TDF timestep per activation and exchanges samples
// with the dataflow world through converter components.
#ifndef SCA_ELN_NETWORK_HPP
#define SCA_ELN_NETWORK_HPP

#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "eln/node.hpp"
#include "tdf/dae_module.hpp"

namespace sca::eln {

class network;
class terminal;

/// What a component reports after sampling its event-driven controls.
enum class stamp_change : std::uint8_t {
    none,      ///< stamps unchanged
    values,    ///< existing stamp-slot values rewritten (numeric refactor only)
    topology,  ///< the stamp pattern may have moved (full restamp + symbolic)
};

/// Base class of all network components. Components register themselves at
/// construction and stamp their equations when the network (re)builds.
class component : public de::object {
public:
    [[nodiscard]] const char* kind() const noexcept override { return "eln_component"; }

    /// Contribute stamps to the network's equation system.
    virtual void stamp(network& net) = 0;

    /// Sample event-driven control inputs and report which stamps changed:
    /// components with stamp slots write the new values themselves (via
    /// network::update_stamp_value) and return stamp_change::values, so only
    /// the dirty entries are touched and the solver refactors numerically;
    /// stamp_change::topology forces the full restamp + symbolic path.
    virtual stamp_change sample_inputs() { return stamp_change::none; }

    /// Exchange samples with TDF ports (called around each solver step).
    virtual void read_tdf_inputs(network&) {}
    virtual void write_tdf_outputs(network&) {}

    /// The network this component stamps into.
    [[nodiscard]] network& net() const noexcept { return *net_; }

    ~component() override;

protected:
    component(std::string name, network& net);

    network* net_;

private:
    // Teardown is order-agnostic: whichever of component/network dies first
    // unlinks from the other (see ~network).
    friend class network;
};

/// Marker for "no row" (ground) in stamping helpers.
inline constexpr std::size_t ground_row = std::numeric_limits<std::size_t>::max();

class network : public tdf::dae_module {
public:
    explicit network(const de::module_name& nm) : tdf::dae_module(nm) {}
    /// Detaches any still-registered components/terminals so their own
    /// destructors do not reach back into a dead network (teardown order
    /// between a network and its components is not constrained).
    ~network() override;

    [[nodiscard]] const char* kind() const noexcept override { return "eln_network"; }

    // --- topology -------------------------------------------------------------
    /// Create a named node of the given nature.  Node names are unique per
    /// network; a duplicate is a construction error (subcircuit-internal
    /// nodes are auto-prefixed with the instance path, so composites stay
    /// unique without effort).
    [[nodiscard]] node create_node(const std::string& name,
                                   nature k = nature::electrical);

    /// Reference node of a nature (0 V / 0 m/s / ambient).
    [[nodiscard]] node ground(nature k = nature::electrical);

    void register_component(component& c) { components_.push_back(&c); }
    void unregister_component(component& c);

    /// Terminals register at construction and deregister on destruction;
    /// their forwarding chains are resolved at elaboration (see
    /// resolve_terminals).
    void register_terminal(terminal& t) { terminals_.push_back(&t); }
    void unregister_terminal(terminal& t);

    /// Resolve every registered terminal to its node, reporting unbound
    /// chains with the full hierarchical path.  Runs automatically at
    /// end_of_elaboration and again (idempotently) before equation setup,
    /// so analyses on never-elaborated testbenches still get diagnostics.
    void resolve_terminals();

    void end_of_elaboration() override { resolve_terminals(); }

    /// Temperature used by noise models (kelvin).
    void set_temperature(double kelvin) { temperature_ = kelvin; }
    [[nodiscard]] double temperature() const noexcept { return temperature_; }

    // --- probes (valid once simulation started) -------------------------------
    /// Across value of a node (voltage, velocity, temperature...).
    [[nodiscard]] double voltage(const node& n) const;
    /// Across difference between two nodes.
    [[nodiscard]] double voltage(const node& a, const node& b) const;
    /// Branch current of a component that owns a branch unknown.
    [[nodiscard]] double current(const component& c) const;

    // --- stamping interface (used by components) -------------------------------
    /// Row/column index of a node's KCL equation (ground_row for ground).
    [[nodiscard]] static std::size_t row_of(const node& n) noexcept {
        return n.is_ground() ? ground_row : n.index();
    }

    /// Stable branch unknown for a component (allocated on first request).
    std::size_t branch_row(const component& c, const std::string& suffix = "i");
    /// Branch row if the component has one; ground_row otherwise.
    [[nodiscard]] std::size_t find_branch(const component& c) const;

    /// Ground-aware stamps into A / B.
    void add_a(std::size_t r, std::size_t c, double v);
    void add_b(std::size_t r, std::size_t c, double v);
    /// Conductance / capacitance two-terminal patterns.
    void stamp_conductance(const node& a, const node& b, double g);
    void stamp_capacitance(const node& a, const node& b, double c);

    // --- stamp slots (values-only incremental updates) -------------------------
    /// Allocate a runtime-updatable value slot (see equation_system).
    [[nodiscard]] solver::stamp_handle add_stamp_slot(double initial_value);
    /// Ground-aware weighted slot references into A / B.
    void stamp_a_slot(solver::stamp_handle h, std::size_t r, std::size_t c, double w);
    void stamp_b_slot(solver::stamp_handle h, std::size_t r, std::size_t c, double w);
    /// Two-terminal conductance/capacitance patterns whose value is the slot.
    void stamp_conductance_slot(solver::stamp_handle h, const node& a, const node& b);
    void stamp_capacitance_slot(solver::stamp_handle h, const node& a, const node& b);
    /// Write a new slot value and schedule the values-only solver refresh.
    void update_stamp_value(solver::stamp_handle h, double v);

    /// Ground-aware RHS contributions.
    void add_rhs_constant(std::size_t r, double v);
    void add_rhs_source(std::size_t r, std::function<double(double)> fn);
    /// Ground-aware externally driven slot; returns slot id (or SIZE_MAX for
    /// ground rows, which set_input ignores).
    std::size_t add_input(std::size_t r);
    void set_input(std::size_t slot, double v);

    /// AC stimulus / noise registration (ground-aware helpers).
    void add_ac_source(std::size_t r, std::complex<double> amplitude);
    void add_noise_between(const node& a, const node& b, std::function<double(double)> psd,
                           std::string name);

    /// Component-visible full-restamp request (topology/pattern changes).
    void component_restamp() { request_restamp(); }
    /// Component-visible values-only refresh request (after set_stamp).
    void component_value_update() { request_value_update(); }

    [[nodiscard]] const std::vector<component*>& components() const noexcept {
        return components_;
    }

    /// Check that a terminal has the expected nature.
    static void check_nature(const node& n, nature expected, const std::string& who);

protected:
    void build_equations() override;
    void read_inputs() override;
    void write_outputs() override;

private:
    struct node_info {
        std::string name;
        nature kind;
    };

    std::vector<node_info> nodes_;
    std::set<std::string> node_names_;
    std::vector<component*> components_;
    std::vector<terminal*> terminals_;
    std::map<std::pair<const component*, std::string>, std::size_t> branch_rows_;
    // First branch row of each component: O(log #components) lookup for
    // current() probes instead of a scan over every (component, suffix) key.
    std::map<const component*, std::size_t> primary_branch_;
    double temperature_ = 300.0;
};

}  // namespace sca::eln

#endif  // SCA_ELN_NETWORK_HPP
