#include "eln/converter.hpp"

namespace sca::eln {

// --------------------------------------------------------------- tdf_vsource

tdf_vsource::tdf_vsource(const std::string& name, network& net)
    : component(name, net), p("p", *this), n("n", *this), inp("inp") {
    inp.set_owner(net);
}

tdf_vsource::tdf_vsource(const std::string& name, network& net, node p_node, node n_node)
    : tdf_vsource(name, net) {
    p.bind(p_node);
    n.bind(n_node);
}

void tdf_vsource::stamp(network& net) {
    const std::size_t k = net.branch_row(*this);
    net.add_a(network::row_of(p.get()), k, 1.0);
    net.add_a(network::row_of(n.get()), k, -1.0);
    net.add_a(k, network::row_of(p.get()), 1.0);
    net.add_a(k, network::row_of(n.get()), -1.0);
    slot_ = net.add_input(k);
}

void tdf_vsource::read_tdf_inputs(network& net) {
    net.set_input(slot_, scale_ * inp.read());
}

// --------------------------------------------------------------- tdf_isource

tdf_isource::tdf_isource(const std::string& name, network& net)
    : component(name, net), p("p", *this), n("n", *this), inp("inp") {
    inp.set_owner(net);
}

tdf_isource::tdf_isource(const std::string& name, network& net, node p_node, node n_node)
    : tdf_isource(name, net) {
    p.bind(p_node);
    n.bind(n_node);
}

void tdf_isource::stamp(network& net) {
    slot_p_ = net.add_input(network::row_of(p.get()));
    slot_n_ = net.add_input(network::row_of(n.get()));
}

void tdf_isource::read_tdf_inputs(network& net) {
    const double i = scale_ * inp.read();
    net.set_input(slot_p_, -i);
    net.set_input(slot_n_, i);
}

// ----------------------------------------------------------------- tdf_vsink

tdf_vsink::tdf_vsink(const std::string& name, network& net)
    : component(name, net), p("p", *this), n("n", *this), outp("outp") {
    outp.set_owner(net);
}

tdf_vsink::tdf_vsink(const std::string& name, network& net, node a, node b)
    : tdf_vsink(name, net) {
    p.bind(a);
    n.bind(b);
}

void tdf_vsink::stamp(network&) {}

void tdf_vsink::write_tdf_outputs(network& net) {
    outp.write(net.voltage(p.get(), n.get()));
}

// ----------------------------------------------------------------- tdf_isink

tdf_isink::tdf_isink(const std::string& name, network& net)
    : component(name, net), p("p", *this), n("n", *this), outp("outp") {
    outp.set_owner(net);
}

tdf_isink::tdf_isink(const std::string& name, network& net, node a, node b)
    : tdf_isink(name, net) {
    p.bind(a);
    n.bind(b);
}

void tdf_isink::stamp(network& net) {
    const std::size_t k = net.branch_row(*this);
    net.add_a(network::row_of(p.get()), k, 1.0);
    net.add_a(network::row_of(n.get()), k, -1.0);
    net.add_a(k, network::row_of(p.get()), 1.0);
    net.add_a(k, network::row_of(n.get()), -1.0);
}

void tdf_isink::write_tdf_outputs(network& net) { outp.write(net.current(*this)); }

// ---------------------------------------------------------------- de_vsource

de_vsource::de_vsource(const std::string& name, network& net)
    : component(name, net), p("p", *this), n("n", *this), inp("inp") {
    net.declare_de_coupled();
}

de_vsource::de_vsource(const std::string& name, network& net, node p_node, node n_node)
    : de_vsource(name, net) {
    p.bind(p_node);
    n.bind(n_node);
}

void de_vsource::stamp(network& net) {
    const std::size_t k = net.branch_row(*this);
    net.add_a(network::row_of(p.get()), k, 1.0);
    net.add_a(network::row_of(n.get()), k, -1.0);
    net.add_a(k, network::row_of(p.get()), 1.0);
    net.add_a(k, network::row_of(n.get()), -1.0);
    slot_ = net.add_input(k);
}

void de_vsource::read_tdf_inputs(network& net) { net.set_input(slot_, inp.read()); }

// ---------------------------------------------------------------- de_isource

de_isource::de_isource(const std::string& name, network& net)
    : component(name, net), p("p", *this), n("n", *this), inp("inp") {
    net.declare_de_coupled();
}

de_isource::de_isource(const std::string& name, network& net, node p_node, node n_node)
    : de_isource(name, net) {
    p.bind(p_node);
    n.bind(n_node);
}

void de_isource::stamp(network& net) {
    slot_p_ = net.add_input(network::row_of(p.get()));
    slot_n_ = net.add_input(network::row_of(n.get()));
}

void de_isource::read_tdf_inputs(network& net) {
    const double i = inp.read();
    net.set_input(slot_p_, -i);
    net.set_input(slot_n_, i);
}

// ------------------------------------------------------------------ de_vsink

de_vsink::de_vsink(const std::string& name, network& net)
    : component(name, net), p("p", *this), n("n", *this), outp("outp") {
    net.declare_de_coupled();
}

de_vsink::de_vsink(const std::string& name, network& net, node a, node b)
    : de_vsink(name, net) {
    p.bind(a);
    n.bind(b);
}

void de_vsink::write_tdf_outputs(network& net) {
    outp.write(net.voltage(p.get(), n.get()));
}

// ---------------------------------------------------------------- de_rswitch

de_rswitch::de_rswitch(const std::string& name, network& net, double r_on, double r_off)
    : component(name, net), p("p", *this), n("n", *this), ctrl("ctrl"), r_on_(r_on),
      r_off_(r_off) {
    net.declare_de_coupled();
    util::require(r_on > 0.0 && r_off > r_on, this->name(),
                  "switch requires 0 < r_on < r_off");
}

de_rswitch::de_rswitch(const std::string& name, network& net, node a, node b, double r_on,
                       double r_off)
    : de_rswitch(name, net, r_on, r_off) {
    p.bind(a);
    n.bind(b);
}

void de_rswitch::stamp(network& net) {
    slot_ = net.add_stamp_slot(1.0 / (closed_ ? r_on_ : r_off_));
    net.stamp_conductance_slot(slot_, p.get(), n.get());
}

stamp_change de_rswitch::sample_inputs() {
    const bool v = ctrl.read();
    if (v != closed_) {
        closed_ = v;
        // No slot yet (registered after the network built): escalate to a
        // full restamp, which allocates the slot and stamps the new state.
        if (slot_ == solver::no_stamp_handle) return stamp_change::topology;
        net_->update_stamp_value(slot_, 1.0 / (closed_ ? r_on_ : r_off_));
        return stamp_change::values;
    }
    return stamp_change::none;
}

}  // namespace sca::eln
