#!/usr/bin/env python3
"""Regenerate the golden waveform traces in tests/golden/.

Builds the test_golden_waveforms binary (configuring a build directory if
needed) and runs it with SCA_REGEN_GOLDEN=1, which rewrites every reference
trace from the current simulator output.  Use after an INTENTIONAL numeric
change, then review the diff of tests/golden/ like any other code change.

Usage:
    scripts/regen_golden.py [--build-dir BUILD] [--filter GTEST_FILTER]
"""

import argparse
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run(cmd, **kw):
    print("+", " ".join(cmd), flush=True)
    subprocess.run(cmd, check=True, **kw)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default=os.path.join(REPO, "build"))
    ap.add_argument("--filter", default="golden_waveforms.*",
                    help="gtest filter selecting which traces to regenerate")
    args = ap.parse_args()

    if not os.path.exists(os.path.join(args.build_dir, "CMakeCache.txt")):
        run(["cmake", "-B", args.build_dir, "-S", REPO,
             "-DCMAKE_BUILD_TYPE=Release"])
    run(["cmake", "--build", args.build_dir, "-j", "--target",
         "test_golden_waveforms"])

    binary = os.path.join(args.build_dir, "test_golden_waveforms")
    env = dict(os.environ, SCA_REGEN_GOLDEN="1")
    run([binary, f"--gtest_filter={args.filter}"], env=env)

    golden = os.path.join(REPO, "tests", "golden")
    print(f"\nRegenerated traces in {golden}:")
    for name in sorted(os.listdir(golden)):
        path = os.path.join(golden, name)
        with open(path) as f:
            rows = sum(1 for _ in f) - 1
        print(f"  {name}: {rows} samples")
    print("\nReview the diff (git diff tests/golden/) before committing.")


if __name__ == "__main__":
    sys.exit(main())
