#!/usr/bin/env python3
"""Fail if the documentation references files that don't exist.

Checked documents: README.md and the whole docs/ tree (architecture, api,
benchmarks, known-issues) — in particular, every `examples/...` file a guide
points at must exist, so example renames can't silently strand the docs.

Checked reference forms:
  - markdown links:            [text](path)        (external URLs skipped)
  - inline code paths:         `src/tdf/cluster`   (repo-root-relative)

Path conventions accepted:
  - a path without extension may name a .hpp/.cpp pair or a directory
  - brace groups expand:       src/kernel/{event,process}
  - a trailing /* or /. means "the directory"
"""

import itertools
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOCS = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))

LINK_RE = re.compile(r"\]\(([^)#]+)(?:#[^)]*)?\)")
CODE_RE = re.compile(r"`([^`\s]+)`")
PATH_PREFIXES = ("src/", "docs/", "tests/", "bench/", "examples/", "scripts/", ".github/")


def expand_braces(path: str):
    m = re.search(r"\{([^{}]*)\}", path)
    if not m:
        return [path]
    head, tail = path[: m.start()], path[m.end():]
    out = []
    for part in m.group(1).split(","):
        out.extend(expand_braces(head + part.strip() + tail))
    return out


def exists(base: pathlib.Path, ref: str) -> bool:
    if "*" in ref:
        return any(
            next(anchor.glob(ref), None) is not None for anchor in (base, ROOT)
        )
    ref = ref.rstrip("/").rstrip(".").rstrip("/")
    if not ref:
        return True
    for anchor in (base, ROOT):
        p = anchor / ref
        if p.exists():
            return True
        if p.suffix == "" and (
            p.with_suffix(".hpp").exists() or p.with_suffix(".cpp").exists()
        ):
            return True
    return False


def candidate_refs(text: str):
    # Markdown links are only looked for outside code: a C++ lambda in a
    # fenced block or inline span (`[](testbench& tb, ...)`) parses exactly
    # like a link otherwise.
    prose = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    prose = re.sub(r"`[^`]*`", "", prose)
    for m in LINK_RE.finditer(prose):
        target = m.group(1).strip()
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if re.search(r"\s", target):
            continue  # prose in parentheses, not a path
        yield target
    for m in CODE_RE.finditer(text):
        token = m.group(1)
        if token.startswith(PATH_PREFIXES) or token in ("CMakeLists.txt",):
            # Strip trailing punctuation from prose and code-call suffixes.
            yield token.rstrip(".,;:")


def main() -> int:
    failures = []
    for doc in DOCS:
        if not doc.exists():
            failures.append(f"{doc.relative_to(ROOT)}: file missing")
            continue
        text = doc.read_text(encoding="utf-8")
        for raw in candidate_refs(text):
            for ref in expand_braces(raw):
                if not exists(doc.parent, ref):
                    failures.append(f"{doc.relative_to(ROOT)}: broken reference '{ref}'")
    if failures:
        print("docs reference check FAILED:")
        for f in failures:
            print("  " + f)
        return 1
    print(f"docs reference check OK ({', '.join(str(d.relative_to(ROOT)) for d in DOCS)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
