#!/usr/bin/env python3
"""Aggregate gcov line coverage and enforce a floor on the TDF core.

Runs `gcov --json-format` over every .gcda file found in the build tree,
merges line hits across translation units, and reports per-file line
coverage for sources matching --source-prefix.  Exits non-zero when the
aggregate coverage of the matched files is below --floor, so CI can gate
on "the block/schedule executor stays tested".

Usage (after building with --coverage and running ctest):
    scripts/check_coverage.py --build-dir build-cov --floor 85
"""

import argparse
import gzip
import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def find_gcda(build_dir):
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                yield os.path.join(root, name)


def gcov_json(gcda, build_dir):
    """Run gcov on one .gcda and yield parsed JSON documents."""
    # --stdout keeps the tree clean; each line of output is one JSON doc.
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", gcda],
        cwd=build_dir, capture_output=True, check=False)
    if proc.returncode != 0:
        print(f"warning: gcov failed on {gcda}: "
              f"{proc.stderr.decode(errors='replace').strip()}",
              file=sys.stderr)
        return
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith(b"\x1f\x8b"):  # some gcov builds emit gzip anyway
            line = gzip.decompress(line)
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            continue


def merge(docs, prefix):
    """-> {relpath: {line_number: total_hits}} for sources under prefix."""
    hits = {}
    for doc in docs:
        for f in doc.get("files", []):
            path = f.get("file", "")
            abspath = os.path.normpath(os.path.join(REPO, path)
                                       if not os.path.isabs(path) else path)
            try:
                rel = os.path.relpath(abspath, REPO)
            except ValueError:
                continue
            if not rel.startswith(prefix):
                continue
            per_line = hits.setdefault(rel, {})
            for ln in f.get("lines", []):
                no = ln["line_number"]
                per_line[no] = per_line.get(no, 0) + ln.get("count", 0)
    return hits


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default=os.path.join(REPO, "build-cov"))
    ap.add_argument("--source-prefix", default="src/tdf/",
                    help="repo-relative prefix of files to gate on")
    ap.add_argument("--floor", type=float, default=85.0,
                    help="minimum aggregate line coverage percent")
    ap.add_argument("--summary", default=None,
                    help="also write the report to this file")
    args = ap.parse_args()

    gcda_files = sorted(find_gcda(args.build_dir))
    if not gcda_files:
        print(f"error: no .gcda files under {args.build_dir} — "
              "build with --coverage and run the tests first",
              file=sys.stderr)
        return 2

    docs = []
    for gcda in gcda_files:
        docs.extend(gcov_json(gcda, args.build_dir))
    hits = merge(docs, args.source_prefix)
    if not hits:
        print(f"error: no coverage data for sources under "
              f"{args.source_prefix}", file=sys.stderr)
        return 2

    lines = []
    tot_cov = tot_all = 0
    for rel in sorted(hits):
        per_line = hits[rel]
        covered = sum(1 for c in per_line.values() if c > 0)
        total = len(per_line)
        tot_cov += covered
        tot_all += total
        pct = 100.0 * covered / total if total else 100.0
        lines.append(f"  {rel:<40} {covered:>5}/{total:<5} {pct:6.1f}%")

    pct = 100.0 * tot_cov / tot_all
    ok = pct >= args.floor
    report = "\n".join([
        f"Line coverage for {args.source_prefix} "
        f"({len(gcda_files)} .gcda files):",
        *lines,
        f"  {'TOTAL':<40} {tot_cov:>5}/{tot_all:<5} {pct:6.1f}%",
        f"Floor: {args.floor:.1f}% -> {'OK' if ok else 'FAIL'}",
    ])
    print(report)
    if args.summary:
        with open(args.summary, "w") as f:
            f.write(report + "\n")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
