file(REMOVE_RECURSE
  "CMakeFiles/test_lib.dir/tests/test_lib.cpp.o"
  "CMakeFiles/test_lib.dir/tests/test_lib.cpp.o.d"
  "test_lib"
  "test_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
