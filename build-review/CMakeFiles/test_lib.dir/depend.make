# Empty dependencies file for test_lib.
# This may be replaced when dependencies are built.
