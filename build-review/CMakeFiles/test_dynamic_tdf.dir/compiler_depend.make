# Empty compiler generated dependencies file for test_dynamic_tdf.
# This may be replaced when dependencies are built.
