file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_tdf.dir/tests/test_dynamic_tdf.cpp.o"
  "CMakeFiles/test_dynamic_tdf.dir/tests/test_dynamic_tdf.cpp.o.d"
  "test_dynamic_tdf"
  "test_dynamic_tdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_tdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
