# Empty dependencies file for example_adsl_frontend.
# This may be replaced when dependencies are built.
