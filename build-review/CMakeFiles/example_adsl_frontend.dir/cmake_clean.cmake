file(REMOVE_RECURSE
  "CMakeFiles/example_adsl_frontend.dir/examples/adsl_frontend.cpp.o"
  "CMakeFiles/example_adsl_frontend.dir/examples/adsl_frontend.cpp.o.d"
  "example_adsl_frontend"
  "example_adsl_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_adsl_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
