# Empty dependencies file for bench_switching_restamp.
# This may be replaced when dependencies are built.
