file(REMOVE_RECURSE
  "CMakeFiles/bench_switching_restamp.dir/bench/bench_switching_restamp.cpp.o"
  "CMakeFiles/bench_switching_restamp.dir/bench/bench_switching_restamp.cpp.o.d"
  "bench_switching_restamp"
  "bench_switching_restamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_switching_restamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
