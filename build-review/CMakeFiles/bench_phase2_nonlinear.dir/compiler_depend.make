# Empty compiler generated dependencies file for bench_phase2_nonlinear.
# This may be replaced when dependencies are built.
