file(REMOVE_RECURSE
  "CMakeFiles/bench_phase2_nonlinear.dir/bench/bench_phase2_nonlinear.cpp.o"
  "CMakeFiles/bench_phase2_nonlinear.dir/bench/bench_phase2_nonlinear.cpp.o.d"
  "bench_phase2_nonlinear"
  "bench_phase2_nonlinear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_phase2_nonlinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
