# Empty dependencies file for test_multidomain.
# This may be replaced when dependencies are built.
