file(REMOVE_RECURSE
  "CMakeFiles/test_multidomain.dir/tests/test_multidomain.cpp.o"
  "CMakeFiles/test_multidomain.dir/tests/test_multidomain.cpp.o.d"
  "test_multidomain"
  "test_multidomain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multidomain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
