file(REMOVE_RECURSE
  "CMakeFiles/bench_freq_domain.dir/bench/bench_freq_domain.cpp.o"
  "CMakeFiles/bench_freq_domain.dir/bench/bench_freq_domain.cpp.o.d"
  "bench_freq_domain"
  "bench_freq_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_freq_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
