# Empty dependencies file for bench_freq_domain.
# This may be replaced when dependencies are built.
