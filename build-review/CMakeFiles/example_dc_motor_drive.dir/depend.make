# Empty dependencies file for example_dc_motor_drive.
# This may be replaced when dependencies are built.
