file(REMOVE_RECURSE
  "CMakeFiles/example_dc_motor_drive.dir/examples/dc_motor_drive.cpp.o"
  "CMakeFiles/example_dc_motor_drive.dir/examples/dc_motor_drive.cpp.o.d"
  "example_dc_motor_drive"
  "example_dc_motor_drive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dc_motor_drive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
