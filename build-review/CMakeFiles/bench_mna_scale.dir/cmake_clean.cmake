file(REMOVE_RECURSE
  "CMakeFiles/bench_mna_scale.dir/bench/bench_mna_scale.cpp.o"
  "CMakeFiles/bench_mna_scale.dir/bench/bench_mna_scale.cpp.o.d"
  "bench_mna_scale"
  "bench_mna_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mna_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
