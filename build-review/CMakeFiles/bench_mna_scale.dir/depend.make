# Empty dependencies file for bench_mna_scale.
# This may be replaced when dependencies are built.
