file(REMOVE_RECURSE
  "CMakeFiles/test_tdf.dir/tests/test_tdf.cpp.o"
  "CMakeFiles/test_tdf.dir/tests/test_tdf.cpp.o.d"
  "test_tdf"
  "test_tdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
