file(REMOVE_RECURSE
  "CMakeFiles/bench_tdf_multirate.dir/bench/bench_tdf_multirate.cpp.o"
  "CMakeFiles/bench_tdf_multirate.dir/bench/bench_tdf_multirate.cpp.o.d"
  "bench_tdf_multirate"
  "bench_tdf_multirate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tdf_multirate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
