# Empty dependencies file for bench_tdf_multirate.
# This may be replaced when dependencies are built.
