# Empty dependencies file for bench_phase3_multidomain.
# This may be replaced when dependencies are built.
