file(REMOVE_RECURSE
  "CMakeFiles/bench_phase3_multidomain.dir/bench/bench_phase3_multidomain.cpp.o"
  "CMakeFiles/bench_phase3_multidomain.dir/bench/bench_phase3_multidomain.cpp.o.d"
  "bench_phase3_multidomain"
  "bench_phase3_multidomain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_phase3_multidomain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
