file(REMOVE_RECURSE
  "CMakeFiles/test_nonlinear.dir/tests/test_nonlinear.cpp.o"
  "CMakeFiles/test_nonlinear.dir/tests/test_nonlinear.cpp.o.d"
  "test_nonlinear"
  "test_nonlinear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nonlinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
