# Empty compiler generated dependencies file for test_nonlinear.
# This may be replaced when dependencies are built.
