# Empty dependencies file for test_tdf_ac.
# This may be replaced when dependencies are built.
