file(REMOVE_RECURSE
  "CMakeFiles/test_tdf_ac.dir/tests/test_tdf_ac.cpp.o"
  "CMakeFiles/test_tdf_ac.dir/tests/test_tdf_ac.cpp.o.d"
  "test_tdf_ac"
  "test_tdf_ac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tdf_ac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
