file(REMOVE_RECURSE
  "CMakeFiles/bench_pipelined_adc.dir/bench/bench_pipelined_adc.cpp.o"
  "CMakeFiles/bench_pipelined_adc.dir/bench/bench_pipelined_adc.cpp.o.d"
  "bench_pipelined_adc"
  "bench_pipelined_adc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipelined_adc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
