# Empty compiler generated dependencies file for example_adaptive_receiver.
# This may be replaced when dependencies are built.
