file(REMOVE_RECURSE
  "CMakeFiles/example_adaptive_receiver.dir/examples/adaptive_receiver.cpp.o"
  "CMakeFiles/example_adaptive_receiver.dir/examples/adaptive_receiver.cpp.o.d"
  "example_adaptive_receiver"
  "example_adaptive_receiver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_adaptive_receiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
