# Empty dependencies file for bench_sdf_vs_de.
# This may be replaced when dependencies are built.
