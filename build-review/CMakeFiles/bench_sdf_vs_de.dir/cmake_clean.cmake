file(REMOVE_RECURSE
  "CMakeFiles/bench_sdf_vs_de.dir/bench/bench_sdf_vs_de.cpp.o"
  "CMakeFiles/bench_sdf_vs_de.dir/bench/bench_sdf_vs_de.cpp.o.d"
  "bench_sdf_vs_de"
  "bench_sdf_vs_de.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sdf_vs_de.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
