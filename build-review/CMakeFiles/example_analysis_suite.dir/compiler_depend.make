# Empty compiler generated dependencies file for example_analysis_suite.
# This may be replaced when dependencies are built.
