file(REMOVE_RECURSE
  "CMakeFiles/example_analysis_suite.dir/examples/analysis_suite.cpp.o"
  "CMakeFiles/example_analysis_suite.dir/examples/analysis_suite.cpp.o.d"
  "example_analysis_suite"
  "example_analysis_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_analysis_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
