# Empty compiler generated dependencies file for example_pipelined_adc.
# This may be replaced when dependencies are built.
