file(REMOVE_RECURSE
  "CMakeFiles/example_pipelined_adc.dir/examples/pipelined_adc.cpp.o"
  "CMakeFiles/example_pipelined_adc.dir/examples/pipelined_adc.cpp.o.d"
  "example_pipelined_adc"
  "example_pipelined_adc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pipelined_adc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
