# Empty compiler generated dependencies file for bench_sync_overhead.
# This may be replaced when dependencies are built.
