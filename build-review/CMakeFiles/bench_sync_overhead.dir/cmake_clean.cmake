file(REMOVE_RECURSE
  "CMakeFiles/bench_sync_overhead.dir/bench/bench_sync_overhead.cpp.o"
  "CMakeFiles/bench_sync_overhead.dir/bench/bench_sync_overhead.cpp.o.d"
  "bench_sync_overhead"
  "bench_sync_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sync_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
