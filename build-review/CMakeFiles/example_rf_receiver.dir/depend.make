# Empty dependencies file for example_rf_receiver.
# This may be replaced when dependencies are built.
