file(REMOVE_RECURSE
  "CMakeFiles/example_rf_receiver.dir/examples/rf_receiver.cpp.o"
  "CMakeFiles/example_rf_receiver.dir/examples/rf_receiver.cpp.o.d"
  "example_rf_receiver"
  "example_rf_receiver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_rf_receiver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
