file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_tdf.dir/bench/bench_dynamic_tdf.cpp.o"
  "CMakeFiles/bench_dynamic_tdf.dir/bench/bench_dynamic_tdf.cpp.o.d"
  "bench_dynamic_tdf"
  "bench_dynamic_tdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_tdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
