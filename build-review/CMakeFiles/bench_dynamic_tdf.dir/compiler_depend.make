# Empty compiler generated dependencies file for bench_dynamic_tdf.
# This may be replaced when dependencies are built.
