# Empty dependencies file for test_lsf.
# This may be replaced when dependencies are built.
