file(REMOVE_RECURSE
  "CMakeFiles/test_lsf.dir/tests/test_lsf.cpp.o"
  "CMakeFiles/test_lsf.dir/tests/test_lsf.cpp.o.d"
  "test_lsf"
  "test_lsf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
