file(REMOVE_RECURSE
  "CMakeFiles/test_rf_line.dir/tests/test_rf_line.cpp.o"
  "CMakeFiles/test_rf_line.dir/tests/test_rf_line.cpp.o.d"
  "test_rf_line"
  "test_rf_line.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rf_line.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
