# Empty dependencies file for test_rf_line.
# This may be replaced when dependencies are built.
