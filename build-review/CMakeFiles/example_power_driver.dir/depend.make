# Empty dependencies file for example_power_driver.
# This may be replaced when dependencies are built.
