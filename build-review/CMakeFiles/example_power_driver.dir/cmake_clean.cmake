file(REMOVE_RECURSE
  "CMakeFiles/example_power_driver.dir/examples/power_driver.cpp.o"
  "CMakeFiles/example_power_driver.dir/examples/power_driver.cpp.o.d"
  "example_power_driver"
  "example_power_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_power_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
