file(REMOVE_RECURSE
  "CMakeFiles/bench_stiff_variable_step.dir/bench/bench_stiff_variable_step.cpp.o"
  "CMakeFiles/bench_stiff_variable_step.dir/bench/bench_stiff_variable_step.cpp.o.d"
  "bench_stiff_variable_step"
  "bench_stiff_variable_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stiff_variable_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
