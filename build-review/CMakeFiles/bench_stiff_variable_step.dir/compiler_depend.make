# Empty compiler generated dependencies file for bench_stiff_variable_step.
# This may be replaced when dependencies are built.
