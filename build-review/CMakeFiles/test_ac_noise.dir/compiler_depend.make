# Empty compiler generated dependencies file for test_ac_noise.
# This may be replaced when dependencies are built.
