file(REMOVE_RECURSE
  "CMakeFiles/test_ac_noise.dir/tests/test_ac_noise.cpp.o"
  "CMakeFiles/test_ac_noise.dir/tests/test_ac_noise.cpp.o.d"
  "test_ac_noise"
  "test_ac_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ac_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
