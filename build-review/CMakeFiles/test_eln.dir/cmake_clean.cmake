file(REMOVE_RECURSE
  "CMakeFiles/test_eln.dir/tests/test_eln.cpp.o"
  "CMakeFiles/test_eln.dir/tests/test_eln.cpp.o.d"
  "test_eln"
  "test_eln.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eln.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
