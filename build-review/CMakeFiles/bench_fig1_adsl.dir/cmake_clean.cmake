file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_adsl.dir/bench/bench_fig1_adsl.cpp.o"
  "CMakeFiles/bench_fig1_adsl.dir/bench/bench_fig1_adsl.cpp.o.d"
  "bench_fig1_adsl"
  "bench_fig1_adsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_adsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
