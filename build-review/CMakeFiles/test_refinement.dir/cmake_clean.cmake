file(REMOVE_RECURSE
  "CMakeFiles/test_refinement.dir/tests/test_refinement.cpp.o"
  "CMakeFiles/test_refinement.dir/tests/test_refinement.cpp.o.d"
  "test_refinement"
  "test_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
