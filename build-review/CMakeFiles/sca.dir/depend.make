# Empty dependencies file for sca.
# This may be replaced when dependencies are built.
