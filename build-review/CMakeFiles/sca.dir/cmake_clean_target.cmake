file(REMOVE_RECURSE
  "libsca.a"
)
