
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ac_analysis.cpp" "CMakeFiles/sca.dir/src/core/ac_analysis.cpp.o" "gcc" "CMakeFiles/sca.dir/src/core/ac_analysis.cpp.o.d"
  "/root/repo/src/core/dc_analysis.cpp" "CMakeFiles/sca.dir/src/core/dc_analysis.cpp.o" "gcc" "CMakeFiles/sca.dir/src/core/dc_analysis.cpp.o.d"
  "/root/repo/src/core/noise_analysis.cpp" "CMakeFiles/sca.dir/src/core/noise_analysis.cpp.o" "gcc" "CMakeFiles/sca.dir/src/core/noise_analysis.cpp.o.d"
  "/root/repo/src/core/run_set.cpp" "CMakeFiles/sca.dir/src/core/run_set.cpp.o" "gcc" "CMakeFiles/sca.dir/src/core/run_set.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "CMakeFiles/sca.dir/src/core/scenario.cpp.o" "gcc" "CMakeFiles/sca.dir/src/core/scenario.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "CMakeFiles/sca.dir/src/core/simulation.cpp.o" "gcc" "CMakeFiles/sca.dir/src/core/simulation.cpp.o.d"
  "/root/repo/src/core/transient.cpp" "CMakeFiles/sca.dir/src/core/transient.cpp.o" "gcc" "CMakeFiles/sca.dir/src/core/transient.cpp.o.d"
  "/root/repo/src/eln/converter.cpp" "CMakeFiles/sca.dir/src/eln/converter.cpp.o" "gcc" "CMakeFiles/sca.dir/src/eln/converter.cpp.o.d"
  "/root/repo/src/eln/line.cpp" "CMakeFiles/sca.dir/src/eln/line.cpp.o" "gcc" "CMakeFiles/sca.dir/src/eln/line.cpp.o.d"
  "/root/repo/src/eln/multidomain.cpp" "CMakeFiles/sca.dir/src/eln/multidomain.cpp.o" "gcc" "CMakeFiles/sca.dir/src/eln/multidomain.cpp.o.d"
  "/root/repo/src/eln/network.cpp" "CMakeFiles/sca.dir/src/eln/network.cpp.o" "gcc" "CMakeFiles/sca.dir/src/eln/network.cpp.o.d"
  "/root/repo/src/eln/node.cpp" "CMakeFiles/sca.dir/src/eln/node.cpp.o" "gcc" "CMakeFiles/sca.dir/src/eln/node.cpp.o.d"
  "/root/repo/src/eln/nonlinear.cpp" "CMakeFiles/sca.dir/src/eln/nonlinear.cpp.o" "gcc" "CMakeFiles/sca.dir/src/eln/nonlinear.cpp.o.d"
  "/root/repo/src/eln/primitives.cpp" "CMakeFiles/sca.dir/src/eln/primitives.cpp.o" "gcc" "CMakeFiles/sca.dir/src/eln/primitives.cpp.o.d"
  "/root/repo/src/eln/sources.cpp" "CMakeFiles/sca.dir/src/eln/sources.cpp.o" "gcc" "CMakeFiles/sca.dir/src/eln/sources.cpp.o.d"
  "/root/repo/src/eln/subcircuit.cpp" "CMakeFiles/sca.dir/src/eln/subcircuit.cpp.o" "gcc" "CMakeFiles/sca.dir/src/eln/subcircuit.cpp.o.d"
  "/root/repo/src/eln/terminal.cpp" "CMakeFiles/sca.dir/src/eln/terminal.cpp.o" "gcc" "CMakeFiles/sca.dir/src/eln/terminal.cpp.o.d"
  "/root/repo/src/kernel/clock.cpp" "CMakeFiles/sca.dir/src/kernel/clock.cpp.o" "gcc" "CMakeFiles/sca.dir/src/kernel/clock.cpp.o.d"
  "/root/repo/src/kernel/context.cpp" "CMakeFiles/sca.dir/src/kernel/context.cpp.o" "gcc" "CMakeFiles/sca.dir/src/kernel/context.cpp.o.d"
  "/root/repo/src/kernel/event.cpp" "CMakeFiles/sca.dir/src/kernel/event.cpp.o" "gcc" "CMakeFiles/sca.dir/src/kernel/event.cpp.o.d"
  "/root/repo/src/kernel/module.cpp" "CMakeFiles/sca.dir/src/kernel/module.cpp.o" "gcc" "CMakeFiles/sca.dir/src/kernel/module.cpp.o.d"
  "/root/repo/src/kernel/object.cpp" "CMakeFiles/sca.dir/src/kernel/object.cpp.o" "gcc" "CMakeFiles/sca.dir/src/kernel/object.cpp.o.d"
  "/root/repo/src/kernel/process.cpp" "CMakeFiles/sca.dir/src/kernel/process.cpp.o" "gcc" "CMakeFiles/sca.dir/src/kernel/process.cpp.o.d"
  "/root/repo/src/kernel/scheduler.cpp" "CMakeFiles/sca.dir/src/kernel/scheduler.cpp.o" "gcc" "CMakeFiles/sca.dir/src/kernel/scheduler.cpp.o.d"
  "/root/repo/src/kernel/signal.cpp" "CMakeFiles/sca.dir/src/kernel/signal.cpp.o" "gcc" "CMakeFiles/sca.dir/src/kernel/signal.cpp.o.d"
  "/root/repo/src/kernel/time.cpp" "CMakeFiles/sca.dir/src/kernel/time.cpp.o" "gcc" "CMakeFiles/sca.dir/src/kernel/time.cpp.o.d"
  "/root/repo/src/lib/amplifier.cpp" "CMakeFiles/sca.dir/src/lib/amplifier.cpp.o" "gcc" "CMakeFiles/sca.dir/src/lib/amplifier.cpp.o.d"
  "/root/repo/src/lib/converters.cpp" "CMakeFiles/sca.dir/src/lib/converters.cpp.o" "gcc" "CMakeFiles/sca.dir/src/lib/converters.cpp.o.d"
  "/root/repo/src/lib/external_ode.cpp" "CMakeFiles/sca.dir/src/lib/external_ode.cpp.o" "gcc" "CMakeFiles/sca.dir/src/lib/external_ode.cpp.o.d"
  "/root/repo/src/lib/filters.cpp" "CMakeFiles/sca.dir/src/lib/filters.cpp.o" "gcc" "CMakeFiles/sca.dir/src/lib/filters.cpp.o.d"
  "/root/repo/src/lib/mixer.cpp" "CMakeFiles/sca.dir/src/lib/mixer.cpp.o" "gcc" "CMakeFiles/sca.dir/src/lib/mixer.cpp.o.d"
  "/root/repo/src/lib/noise_source.cpp" "CMakeFiles/sca.dir/src/lib/noise_source.cpp.o" "gcc" "CMakeFiles/sca.dir/src/lib/noise_source.cpp.o.d"
  "/root/repo/src/lib/oscillator.cpp" "CMakeFiles/sca.dir/src/lib/oscillator.cpp.o" "gcc" "CMakeFiles/sca.dir/src/lib/oscillator.cpp.o.d"
  "/root/repo/src/lib/pipeline_adc.cpp" "CMakeFiles/sca.dir/src/lib/pipeline_adc.cpp.o" "gcc" "CMakeFiles/sca.dir/src/lib/pipeline_adc.cpp.o.d"
  "/root/repo/src/lib/pll.cpp" "CMakeFiles/sca.dir/src/lib/pll.cpp.o" "gcc" "CMakeFiles/sca.dir/src/lib/pll.cpp.o.d"
  "/root/repo/src/lib/pwm.cpp" "CMakeFiles/sca.dir/src/lib/pwm.cpp.o" "gcc" "CMakeFiles/sca.dir/src/lib/pwm.cpp.o.d"
  "/root/repo/src/lib/sigma_delta.cpp" "CMakeFiles/sca.dir/src/lib/sigma_delta.cpp.o" "gcc" "CMakeFiles/sca.dir/src/lib/sigma_delta.cpp.o.d"
  "/root/repo/src/lsf/ltf.cpp" "CMakeFiles/sca.dir/src/lsf/ltf.cpp.o" "gcc" "CMakeFiles/sca.dir/src/lsf/ltf.cpp.o.d"
  "/root/repo/src/lsf/node.cpp" "CMakeFiles/sca.dir/src/lsf/node.cpp.o" "gcc" "CMakeFiles/sca.dir/src/lsf/node.cpp.o.d"
  "/root/repo/src/lsf/primitives.cpp" "CMakeFiles/sca.dir/src/lsf/primitives.cpp.o" "gcc" "CMakeFiles/sca.dir/src/lsf/primitives.cpp.o.d"
  "/root/repo/src/lsf/state_space.cpp" "CMakeFiles/sca.dir/src/lsf/state_space.cpp.o" "gcc" "CMakeFiles/sca.dir/src/lsf/state_space.cpp.o.d"
  "/root/repo/src/lsf/view.cpp" "CMakeFiles/sca.dir/src/lsf/view.cpp.o" "gcc" "CMakeFiles/sca.dir/src/lsf/view.cpp.o.d"
  "/root/repo/src/numeric/dense.cpp" "CMakeFiles/sca.dir/src/numeric/dense.cpp.o" "gcc" "CMakeFiles/sca.dir/src/numeric/dense.cpp.o.d"
  "/root/repo/src/numeric/sparse.cpp" "CMakeFiles/sca.dir/src/numeric/sparse.cpp.o" "gcc" "CMakeFiles/sca.dir/src/numeric/sparse.cpp.o.d"
  "/root/repo/src/solver/ac.cpp" "CMakeFiles/sca.dir/src/solver/ac.cpp.o" "gcc" "CMakeFiles/sca.dir/src/solver/ac.cpp.o.d"
  "/root/repo/src/solver/dc.cpp" "CMakeFiles/sca.dir/src/solver/dc.cpp.o" "gcc" "CMakeFiles/sca.dir/src/solver/dc.cpp.o.d"
  "/root/repo/src/solver/equation_system.cpp" "CMakeFiles/sca.dir/src/solver/equation_system.cpp.o" "gcc" "CMakeFiles/sca.dir/src/solver/equation_system.cpp.o.d"
  "/root/repo/src/solver/external.cpp" "CMakeFiles/sca.dir/src/solver/external.cpp.o" "gcc" "CMakeFiles/sca.dir/src/solver/external.cpp.o.d"
  "/root/repo/src/solver/linear_dae.cpp" "CMakeFiles/sca.dir/src/solver/linear_dae.cpp.o" "gcc" "CMakeFiles/sca.dir/src/solver/linear_dae.cpp.o.d"
  "/root/repo/src/solver/noise.cpp" "CMakeFiles/sca.dir/src/solver/noise.cpp.o" "gcc" "CMakeFiles/sca.dir/src/solver/noise.cpp.o.d"
  "/root/repo/src/solver/nonlinear_dae.cpp" "CMakeFiles/sca.dir/src/solver/nonlinear_dae.cpp.o" "gcc" "CMakeFiles/sca.dir/src/solver/nonlinear_dae.cpp.o.d"
  "/root/repo/src/tdf/cluster.cpp" "CMakeFiles/sca.dir/src/tdf/cluster.cpp.o" "gcc" "CMakeFiles/sca.dir/src/tdf/cluster.cpp.o.d"
  "/root/repo/src/tdf/converter.cpp" "CMakeFiles/sca.dir/src/tdf/converter.cpp.o" "gcc" "CMakeFiles/sca.dir/src/tdf/converter.cpp.o.d"
  "/root/repo/src/tdf/dae_module.cpp" "CMakeFiles/sca.dir/src/tdf/dae_module.cpp.o" "gcc" "CMakeFiles/sca.dir/src/tdf/dae_module.cpp.o.d"
  "/root/repo/src/tdf/dynamic.cpp" "CMakeFiles/sca.dir/src/tdf/dynamic.cpp.o" "gcc" "CMakeFiles/sca.dir/src/tdf/dynamic.cpp.o.d"
  "/root/repo/src/tdf/module.cpp" "CMakeFiles/sca.dir/src/tdf/module.cpp.o" "gcc" "CMakeFiles/sca.dir/src/tdf/module.cpp.o.d"
  "/root/repo/src/tdf/port.cpp" "CMakeFiles/sca.dir/src/tdf/port.cpp.o" "gcc" "CMakeFiles/sca.dir/src/tdf/port.cpp.o.d"
  "/root/repo/src/tdf/schedule.cpp" "CMakeFiles/sca.dir/src/tdf/schedule.cpp.o" "gcc" "CMakeFiles/sca.dir/src/tdf/schedule.cpp.o.d"
  "/root/repo/src/util/fft.cpp" "CMakeFiles/sca.dir/src/util/fft.cpp.o" "gcc" "CMakeFiles/sca.dir/src/util/fft.cpp.o.d"
  "/root/repo/src/util/measure.cpp" "CMakeFiles/sca.dir/src/util/measure.cpp.o" "gcc" "CMakeFiles/sca.dir/src/util/measure.cpp.o.d"
  "/root/repo/src/util/report.cpp" "CMakeFiles/sca.dir/src/util/report.cpp.o" "gcc" "CMakeFiles/sca.dir/src/util/report.cpp.o.d"
  "/root/repo/src/util/trace.cpp" "CMakeFiles/sca.dir/src/util/trace.cpp.o" "gcc" "CMakeFiles/sca.dir/src/util/trace.cpp.o.d"
  "/root/repo/src/util/waveform.cpp" "CMakeFiles/sca.dir/src/util/waveform.cpp.o" "gcc" "CMakeFiles/sca.dir/src/util/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
