file(REMOVE_RECURSE
  "CMakeFiles/bench_phase1_capabilities.dir/bench/bench_phase1_capabilities.cpp.o"
  "CMakeFiles/bench_phase1_capabilities.dir/bench/bench_phase1_capabilities.cpp.o.d"
  "bench_phase1_capabilities"
  "bench_phase1_capabilities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_phase1_capabilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
