# Empty dependencies file for bench_phase1_capabilities.
# This may be replaced when dependencies are built.
