# Empty compiler generated dependencies file for bench_linear_vs_nonlinear.
# This may be replaced when dependencies are built.
