file(REMOVE_RECURSE
  "CMakeFiles/bench_linear_vs_nonlinear.dir/bench/bench_linear_vs_nonlinear.cpp.o"
  "CMakeFiles/bench_linear_vs_nonlinear.dir/bench/bench_linear_vs_nonlinear.cpp.o.d"
  "bench_linear_vs_nonlinear"
  "bench_linear_vs_nonlinear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linear_vs_nonlinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
