file(REMOVE_RECURSE
  "CMakeFiles/example_solver_coupling.dir/examples/solver_coupling.cpp.o"
  "CMakeFiles/example_solver_coupling.dir/examples/solver_coupling.cpp.o.d"
  "example_solver_coupling"
  "example_solver_coupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_solver_coupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
