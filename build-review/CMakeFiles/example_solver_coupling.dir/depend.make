# Empty dependencies file for example_solver_coupling.
# This may be replaced when dependencies are built.
