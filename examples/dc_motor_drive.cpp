// Phase-3 automotive scenario: a DC motor drive spanning three disciplines
// in one conservative network (electrical armature, rotational mechanics,
// thermal winding model) with a software speed controller in the DE world —
// the paper's "virtual prototype including software-in-the-loop" pattern.
#include <cstdio>

#include "core/simulation.hpp"
#include "core/transient.hpp"
#include "eln/converter.hpp"
#include "eln/multidomain.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"

namespace de = sca::de;
namespace eln = sca::eln;
using namespace sca::de::literals;

int main() {
    sca::core::simulation sim;

    // --- plant: motor + load + thermal model -------------------------------
    eln::network plant("plant");
    plant.set_timestep(200.0, de::time_unit::us);
    auto gnd = plant.ground();
    auto rgnd = plant.ground(eln::nature::mechanical_rotational);
    auto tamb = plant.ground(eln::nature::thermal);
    auto varm = plant.create_node("varm");
    auto shaft = plant.create_node("shaft", eln::nature::mechanical_rotational);
    auto tj = plant.create_node("tj", eln::nature::thermal);

    // Armature supply controlled from the DE side (the "power stage").
    de::signal<double> v_cmd("v_cmd", 0.0);
    eln::de_vsource supply("supply", plant, varm, gnd);
    supply.inp.bind(v_cmd);

    const double kt = 0.08;  // N*m/A and V*s/rad
    eln::dc_motor motor("motor", plant, varm, gnd, shaft, 0.8, 2e-3, kt);
    eln::inertia rotor("rotor", plant, shaft, 0.004);
    eln::rotational_damper friction("friction", plant, shaft, rgnd, 5e-4);
    // Load torque step at t = 4 s (someone grabs the shaft).
    eln::torque_source load("load", plant, shaft, rgnd,
                            eln::waveform::pulse(0.0, 0.3, 4.0, 1e-3, 1e-3, 100.0, 200.0));

    // Winding heats with I^2 R; modeled as thermal RC fed by a heat source
    // whose value the controller updates from the measured current.
    de::signal<double> p_loss("p_loss", 0.0);
    struct de_heat : eln::component {
        de::in<double> inp;
        eln::node p, n;
        std::size_t sp = 0, sn = 0;
        de_heat(const std::string& nm, eln::network& net, eln::node p_, eln::node n_)
            : component(nm, net), inp("inp"), p(p_), n(n_) {}
        void stamp(eln::network& net) override {
            sp = net.add_input(eln::network::row_of(p));
            sn = net.add_input(eln::network::row_of(n));
        }
        void read_tdf_inputs(eln::network& net) override {
            net.set_input(sp, -inp.read());
            net.set_input(sn, inp.read());
        }
    } heater("heater", plant, tamb, tj);
    heater.inp.bind(p_loss);
    eln::thermal_resistance rth("rth", plant, tj, tamb, 3.0);
    eln::thermal_capacitance cth("cth", plant, tj, 25.0);

    // --- software controller (DE): PI speed loop at 1 kHz ------------------
    const double w_target = 100.0;  // rad/s
    double integral = 0.0;
    auto& ctl = sim.context().register_method("speed_ctl", [&] {
        const double w = plant.voltage(shaft);
        const double i_arm = plant.current(motor);
        const double err = w_target - w;
        integral += err * 1e-3;
        const double v = std::min(24.0, std::max(0.0, 0.8 * err + 4.0 * integral));
        v_cmd.write(v);
        p_loss.write(i_arm * i_arm * 0.8);  // I^2 R into the thermal model
        sim.context().next_trigger(1_ms);
    });
    (void)ctl;

    sca::core::transient_recorder rec(sim, 10_ms);
    rec.add_probe("speed", [&] { return plant.voltage(shaft); });
    rec.add_probe("temp", [&] { return plant.voltage(tj); });
    rec.add_probe("current", [&] { return plant.current(motor); });
    rec.run(8_sec);

    const auto speed = rec.column(0);
    const auto temp = rec.column(1);
    const auto current = rec.column(2);

    auto at = [&](double t) {
        return static_cast<std::size_t>(t / 10e-3);
    };
    std::printf("DC motor drive: electrical + rotational + thermal + software MoCs\n\n");
    std::printf("%8s %12s %12s %12s\n", "t [s]", "w [rad/s]", "I_arm [A]", "dT [K]");
    for (double t : {0.5, 1.0, 2.0, 3.9, 4.5, 6.0, 7.9}) {
        const auto i = at(t);
        std::printf("%8.1f %12.2f %12.2f %12.2f\n", t, speed[i], current[i], temp[i]);
    }
    std::printf("\nExpected shape: the PI loop settles the speed at %.0f rad/s, the\n"
                "load-torque step at t=4 s produces a dip the controller recovers,\n"
                "armature current and winding temperature rise accordingly.\n",
                w_target);
    return 0;
}
