// Phase-3 automotive scenario: a DC motor drive spanning three disciplines
// in one conservative network (electrical armature, rotational mechanics,
// thermal winding model) with a software speed controller in the DE world —
// the paper's "virtual prototype including software-in-the-loop" pattern.
//
// On the scenario API the whole virtual prototype — plant, controller state,
// probes — is one reusable definition; the target speed and load-torque step
// are typed parameters, so sweeping drive profiles is a run_set away.
#include <cstdio>

#include "core/scenario.hpp"
#include "eln/converter.hpp"
#include "eln/multidomain.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"

namespace core = sca::core;
namespace de = sca::de;
namespace eln = sca::eln;
using namespace sca::de::literals;

namespace {

// Heat source whose value the DE controller updates from measured current.
struct de_heat : eln::component {
    de::in<double> inp;
    eln::node p, n;
    std::size_t sp = 0, sn = 0;
    de_heat(const std::string& nm, eln::network& net, eln::node p_, eln::node n_)
        : component(nm, net), inp("inp"), p(p_), n(n_) {}
    void stamp(eln::network& net) override {
        sp = net.add_input(eln::network::row_of(p));
        sn = net.add_input(eln::network::row_of(n));
    }
    void read_tdf_inputs(eln::network& net) override {
        net.set_input(sp, -inp.read());
        net.set_input(sn, inp.read());
    }
};

core::scenario define_motor_drive() {
    return core::scenario::define(
        "dc_motor_drive", core::params{{"w_target", 100.0}, {"load_step", 0.3}},
        [](core::testbench& tb, const core::params& p) {
            // --- plant: motor + load + thermal model -----------------------
            auto& plant = tb.make<eln::network>("plant");
            plant.set_timestep(200.0, de::time_unit::us);
            auto gnd = plant.ground();
            auto rgnd = plant.ground(eln::nature::mechanical_rotational);
            auto tamb = plant.ground(eln::nature::thermal);
            auto varm = plant.create_node("varm");
            auto shaft = plant.create_node("shaft", eln::nature::mechanical_rotational);
            auto tj = plant.create_node("tj", eln::nature::thermal);

            // Armature supply controlled from the DE side (the "power stage").
            auto& v_cmd = tb.make<de::signal<double>>("v_cmd", 0.0);
            auto& supply = tb.make<eln::de_vsource>("supply", plant, varm, gnd);
            supply.inp.bind(v_cmd);

            const double kt = 0.08;  // N*m/A and V*s/rad
            auto& motor = tb.make<eln::dc_motor>("motor", plant, varm, gnd, shaft,
                                                 0.8, 2e-3, kt);
            tb.make<eln::inertia>("rotor", plant, shaft, 0.004);
            tb.make<eln::rotational_damper>("friction", plant, shaft, rgnd, 5e-4);
            // Load torque step at t = 4 s (someone grabs the shaft).
            tb.make<eln::torque_source>(
                "load", plant, shaft, rgnd,
                eln::waveform::pulse(0.0, p.number("load_step"), 4.0, 1e-3, 1e-3,
                                     100.0, 200.0));

            auto& p_loss = tb.make<de::signal<double>>("p_loss", 0.0);
            auto& heater = tb.make<de_heat>("heater", plant, tamb, tj);
            heater.inp.bind(p_loss);
            tb.make<eln::thermal_resistance>("rth", plant, tj, tamb, 3.0);
            tb.make<eln::thermal_capacitance>("cth", plant, tj, 25.0);

            // --- software controller (DE): PI speed loop at 1 kHz ----------
            struct pi_state {
                double integral = 0.0;
            };
            auto& st = tb.make<pi_state>();
            auto& ctx = tb.context();
            const double w_target = p.number("w_target");
            ctx.register_method("speed_ctl", [&ctx, &plant, &motor, &v_cmd, &p_loss,
                                              &st, w_target, shaft] {
                const double w = plant.voltage(shaft);
                const double i_arm = plant.current(motor);
                const double err = w_target - w;
                st.integral += err * 1e-3;
                const double v =
                    std::min(24.0, std::max(0.0, 0.8 * err + 4.0 * st.integral));
                v_cmd.write(v);
                p_loss.write(i_arm * i_arm * 0.8);  // I^2 R into the thermal model
                ctx.next_trigger(1_ms);
            });

            tb.probe("speed", [&plant, shaft] { return plant.voltage(shaft); });
            tb.probe("temp", [&plant, tj] { return plant.voltage(tj); });
            tb.probe("current", [&plant, &motor] { return plant.current(motor); });
            tb.set_sample_period(10_ms);
            tb.set_stop_time(8_sec);
            tb.measure("w_final", [&plant, shaft] { return plant.voltage(shaft); });
        });
}

}  // namespace

int main() {
    auto drive = define_motor_drive();
    auto tb = drive.build();
    tb->run();

    const auto speed = tb->waveform("speed");
    const auto temp = tb->waveform("temp");
    const auto current = tb->waveform("current");

    auto at = [&](double t) { return static_cast<std::size_t>(t / 10e-3); };
    std::printf("DC motor drive: electrical + rotational + thermal + software MoCs\n\n");
    std::printf("%8s %12s %12s %12s\n", "t [s]", "w [rad/s]", "I_arm [A]", "dT [K]");
    for (double t : {0.5, 1.0, 2.0, 3.9, 4.5, 6.0, 7.9}) {
        const auto i = at(t);
        std::printf("%8.1f %12.2f %12.2f %12.2f\n", t, speed[i], current[i], temp[i]);
    }
    std::printf("\nExpected shape: the PI loop settles the speed at %.0f rad/s, the\n"
                "load-torque step at t=4 s produces a dip the controller recovers,\n"
                "armature current and winding temperature rise accordingly.\n",
                tb->parameters().number("w_target"));
    return 0;
}
