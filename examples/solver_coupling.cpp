// The paper's open-architecture objective: "SystemC-AMS must support the
// coupling with existing continuous-time simulators ... an open architecture
// in which existing, mature, simulators or solvers may be plugged in and
// coupled with discrete-time MoCs."
//
// This example integrates the same nonlinear plant (a Van der Pol
// oscillator) two ways:
//   1. through the plug-in boundary `solver::external_solver`, using the
//      in-tree RK4 engine as the stand-in "existing simulator", wrapped
//      into the dataflow world by `lib::external_ode` — built as a scenario
//      so the coupling testbench is reusable;
//   2. as a reference, directly with the library's own variable-step
//      nonlinear DAE solver on the equation interface.
// It also shows the [6]-style frequency-domain cascade over TDF models.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/ac_analysis.hpp"
#include "core/scenario.hpp"
#include "lib/amplifier.hpp"
#include "lib/external_ode.hpp"
#include "lib/filters.hpp"
#include "lib/oscillator.hpp"
#include "solver/equation_system.hpp"
#include "solver/external.hpp"
#include "solver/nonlinear_dae.hpp"
#include "tdf/port.hpp"
#include "util/measure.hpp"

namespace core = sca::core;
namespace de = sca::de;
namespace tdf = sca::tdf;
namespace lib = sca::lib;
namespace solver = sca::solver;
using namespace sca::de::literals;

namespace {

constexpr double k_mu = 1.0;  // Van der Pol damping parameter

struct recorder : tdf::module {
    tdf::in<double> in;
    std::vector<double> samples;
    explicit recorder(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { samples.push_back(in.read()); }
};

/// Foreign engine behind the coupling interface, embedded in TDF.
core::scenario define_coupled_vdp() {
    return core::scenario::define(
        "coupled_vdp", core::params{{"mu", k_mu}, {"x0", 0.1}},
        [](core::testbench& tb, const core::params& p) {
            const double mu = p.number("mu");
            auto engine = std::make_unique<solver::rk4_solver>(1e-4);
            engine->configure(2, 1,
                              [mu](double, const std::vector<double>& x,
                                   const std::vector<double>& u,
                                   std::vector<double>& dx) {
                                  dx[0] = x[1];
                                  dx[1] = mu * (1.0 - x[0] * x[0]) * x[1] - x[0] + u[0];
                              });
            engine->set_state({p.number("x0"), 0.0});
            auto& plant = tb.make<lib::external_ode>("plant", std::move(engine),
                                                     /*output_state=*/0);
            plant.set_timestep(1.0, de::time_unit::ms);

            auto& zero = tb.make<lib::waveform_source>(
                "zero", sca::util::waveform::dc(0.0));
            auto& rec = tb.make<recorder>("rec");
            auto& s_u = tb.make<tdf::signal<double>>("s_u");
            auto& s_y = tb.make<tdf::signal<double>>("s_y");
            zero.out.bind(s_u);
            plant.in.bind(s_u);
            plant.out.bind(s_y);
            rec.in.bind(s_y);

            tb.set_stop_time(40_sec);
            tb.measure("amplitude", [&rec] {
                double amp = 0.0;
                for (std::size_t i = rec.samples.size() / 2; i < rec.samples.size();
                     ++i) {
                    amp = std::max(amp, std::abs(rec.samples[i]));
                }
                return amp;
            });
            tb.measure("rhs_evaluations", [&plant] {
                auto& rk = dynamic_cast<solver::rk4_solver&>(plant.engine());
                return double(rk.rhs_evaluations());
            });
        });
}

}  // namespace

int main() {
    // ---------------------------------------------------------------------
    // 1. Foreign engine behind the coupling interface, embedded in TDF.
    // ---------------------------------------------------------------------
    auto coupled = define_coupled_vdp().build();
    coupled->run();

    // ---------------------------------------------------------------------
    // 2. Native reference: the same oscillator on the equation interface.
    //    x1' = x2;  x2' = mu (1 - x1^2) x2 - x1.
    // ---------------------------------------------------------------------
    solver::equation_system sys;
    const std::size_t x1 = sys.add_unknown("x1");
    const std::size_t x2 = sys.add_unknown("x2");
    sys.add_b(x1, x1, 1.0);
    sys.add_a(x1, x2, -1.0);
    sys.add_b(x2, x2, 1.0);
    sys.add_a(x2, x1, 1.0);
    sys.add_nonlinear([x1, x2](const std::vector<double>& x, std::vector<double>& r,
                               std::vector<solver::jacobian_entry>& j) {
        r[x2] += -k_mu * (1.0 - x[x1] * x[x1]) * x[x2];
        j.push_back({x2, x2, -k_mu * (1.0 - x[x1] * x[x1])});
        j.push_back({x2, x1, 2.0 * k_mu * x[x1] * x[x2]});
    });
    solver::nonlinear_options opt;
    opt.h_init = 1e-4;
    opt.h_max = 5e-3;
    solver::nonlinear_dae_solver native(sys, opt);
    native.set_initial_state({0.1, 0.0}, 0.0);
    double native_amp = 0.0;
    for (double t = 20.0; t <= 40.0; t += 0.01) {
        native.advance_to(t);
        native_amp = std::max(native_amp, std::abs(native.x()[0]));
    }

    std::printf("Open solver coupling (paper: 'existing simulators may be plugged in')\n\n");
    std::printf("Van der Pol oscillator, mu = %.1f, limit-cycle amplitude (theory ~2.0):\n",
                k_mu);
    std::printf("  external engine (rk4 via external_solver) : %.3f  [%.0f RHS evals]\n",
                coupled->measurement("amplitude"),
                coupled->measurement("rhs_evaluations"));
    std::printf("  native variable-step Newton solver        : %.3f  [%llu steps, %llu rejected]\n",
                native_amp, static_cast<unsigned long long>(native.steps_accepted()),
                static_cast<unsigned long long>(native.steps_rejected()));

    // ---------------------------------------------------------------------
    // 3. [6]-style frequency-domain cascade over TDF component models.
    // ---------------------------------------------------------------------
    core::testbench cascade_tb("cascade");
    auto& ifa = cascade_tb.make<lib::amplifier>("ifa", 8.0);
    ifa.set_bandwidth(20e3);
    auto& post = cascade_tb.make<lib::fir>("post", lib::fir::design_lowpass(63, 0.1));
    struct src_t : tdf::module {
        tdf::out<double> out;
        explicit src_t(const de::module_name& nm) : tdf::module(nm), out("out") {}
        void set_attributes() override { set_timestep(10.0, de::time_unit::us); }
        void processing() override { out.write(0.0); }
    };
    auto& s = cascade_tb.make<src_t>("s");
    auto& r2 = cascade_tb.make<recorder>("r2");
    auto& w1 = cascade_tb.make<tdf::signal<double>>("w1");
    auto& w2 = cascade_tb.make<tdf::signal<double>>("w2");
    auto& w3 = cascade_tb.make<tdf::signal<double>>("w3");
    s.out.bind(w1);
    ifa.in.bind(w1);
    ifa.out.bind(w2);
    post.in.bind(w2);
    post.out.bind(w3);
    r2.in.bind(w3);
    cascade_tb.elaborate();

    const std::vector<const tdf::module*> chain{&ifa, &post};
    std::printf("\nfrequency-domain cascade (amplifier pole x FIR, paper [6] style):\n");
    std::printf("%12s %14s %14s\n", "f [kHz]", "|H| [dB]", "phase [deg]");
    for (double f : {1e3, 5e3, 10e3, 20e3, 30e3}) {
        const auto pt = core::tdf_cascade_response(chain, {f, f, 1})[0];
        std::printf("%12.1f %14.2f %14.1f\n", f / 1e3, pt.magnitude_db(), pt.phase_deg());
    }
    std::printf("\nExpected shape: both engines find the ~2.0 limit cycle; the cascade\n"
                "rolls off with the amplifier pole (20 kHz) and the FIR cutoff (10 kHz).\n");
    return 0;
}
