// Adaptive receiver: dynamic TDF adaptive sampling.
//
// A bursty input (tone bursts with long quiet gaps, the duty cycle of a
// battery-operated sensor radio) feeds a decimating front end: an 8-tap
// windowed FIR + 8:1 decimator with an envelope detector.  The front end is a
// *dynamic* TDF module — when the envelope shows no signal for a few
// periods it requests an 8x larger timestep (change_attributes ->
// request_timestep), dropping the whole cluster to 1/8 of the sample rate;
// the instant a burst appears it snaps back.  The source and sink accept
// the retiming (accept_attribute_changes), so the cluster reschedules
// between periods through the schedule cache: after the first visit to each
// of the two rate configurations every reschedule is a hash lookup.
//
// The payoff is printed at the end: the adaptive run fires the front end a
// fraction of the times the static worst-case-rate model would, while
// catching every burst.  bench/bench_dynamic_tdf.cpp measures the same
// model against the static baseline in wall-clock samples/s.
//
// Build & run:  ./examples/adaptive_receiver
#include <cmath>
#include <cstdio>

#include "core/scenario.hpp"
#include "tdf/cluster.hpp"
#include "tdf/connect.hpp"
#include "tdf/module.hpp"
#include "tdf/port.hpp"

namespace core = sca::core;
namespace de = sca::de;
namespace tdf = sca::tdf;
using namespace sca::de::literals;

namespace {

constexpr double k_pi = 3.141592653589793;

/// Tone bursts: `burst_ms` of a 20 kHz tone at the start of every
/// `frame_ms` frame, a faint noise floor otherwise.  Evaluated at
/// tdf_time(), so it is exact at any sampling rate the cluster settles on.
struct burst_source : tdf::module {
    tdf::out<double> out;
    double frame_s, burst_s;

    burst_source(const de::module_name& nm, double frame_ms, double burst_ms)
        : tdf::module(nm), out("out"), frame_s(frame_ms * 1e-3),
          burst_s(burst_ms * 1e-3) {}

    [[nodiscard]] bool accept_attribute_changes() const override { return true; }
    void processing() override {
        const double t = tdf_time().to_seconds();
        const double phase = std::fmod(t, frame_s);
        const double v = phase < burst_s
                             ? std::sin(2.0 * k_pi * 20e3 * t)
                             : 1e-3 * std::sin(2.0 * k_pi * 1.1e3 * t);
        out.write(v);
    }
};

/// 8-tap windowed FIR + 8:1 decimator + envelope detector that retimes
/// itself: after `quiet_limit` consecutive quiet periods it requests
/// `slow_factor`x its base timestep; any activity snaps it back.
struct adaptive_frontend : tdf::module {
    tdf::in<double> in;    // rate 8: one frame of input per firing
    tdf::out<double> out;  // rate 1: decimated sample
    de::time base_step;
    double threshold;
    std::int64_t slow_factor;
    int quiet_limit;
    int quiet_streak = 0;
    bool slow = false;
    double envelope = 0.0;
    std::uint64_t bursts_seen = 0;
    double taps[8];

    adaptive_frontend(const de::module_name& nm, const de::time& step)
        : tdf::module(nm), in("in"), out("out"), base_step(step), threshold(0.05),
          slow_factor(8), quiet_limit(3) {
        in.set_rate(8);
        // Hamming-windowed boxcar over the firing's 8 samples; the exact
        // taps only matter as per-sample work representative of a real
        // decimating front end.
        for (int i = 0; i < 8; ++i) {
            taps[i] = (0.54 - 0.46 * std::cos(2.0 * k_pi * i / 7.0)) / 8.0;
        }
    }

    [[nodiscard]] bool does_attribute_changes() const override { return true; }
    void set_attributes() override { set_timestep(base_step); }

    void processing() override {
        // One FIR dot product per output sample (8 fresh taps + history via
        // the port's delayed reads would need a delay line; the 8 current
        // samples are enough for the demo's work profile).
        double acc = 0.0;
        double peak = 0.0;
        for (unsigned k = 0; k < 8; ++k) {
            const double v = in.read(k);
            acc += taps[k] * v;
            peak = std::max(peak, std::abs(v));
        }
        out.write(acc);
        const bool was_quiet = envelope < threshold;
        envelope = peak;
        if (was_quiet && peak >= threshold) ++bursts_seen;
    }

    void change_attributes() override {
        if (envelope >= threshold) {
            quiet_streak = 0;
            slow = false;
        } else if (++quiet_streak >= quiet_limit) {
            slow = true;
        }
        request_timestep(slow ? base_step * slow_factor : base_step);
    }
};

struct level_sink : tdf::module {
    tdf::in<double> in;
    std::uint64_t samples = 0;

    explicit level_sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
    [[nodiscard]] bool accept_attribute_changes() const override { return true; }
    void processing() override {
        (void)in.read();
        ++samples;
    }
};

}  // namespace

int main() {
    // Front end fires every 8 us when awake (1 Msps input), every 64 us when
    // the band is quiet; bursts occupy 1 ms of every 10 ms frame.
    auto receiver = core::scenario::define(
        "adaptive_receiver", core::params{{"adaptive", 1.0}},
        [](core::testbench& tb, const core::params& p) {
            auto& src = tb.make<burst_source>("src", 10.0, 1.0);
            auto& fe = tb.make<adaptive_frontend>("fe", 8_us);
            if (p.number("adaptive") == 0.0) fe.quiet_limit = 1 << 30;  // never slows
            auto& sink = tb.make<level_sink>("sink");
            connect(src.out, fe.in);
            auto& s_dec = connect(fe.out, sink.in);
            tb.probe("decimated", s_dec);
            tb.set_sample_period(64_us);
            tb.set_stop_time(200_ms);
            tb.measure("bursts", [&fe] { return double(fe.bursts_seen); });
            tb.measure("fe_firings", [&fe] { return double(fe.activation_count()); });
            tb.measure("src_firings", [&src] { return double(src.activation_count()); });
        });

    auto adaptive = receiver.build();
    adaptive->run();
    auto statict = receiver.build({{"adaptive", 0.0}});
    statict->run();

    const auto& cluster = *tdf::registry::of(adaptive->context()).clusters().at(0);
    std::printf("adaptive_receiver: 200 ms of a bursty band (1 ms burst / 10 ms frame)\n");
    std::printf("  burst onsets detected      : %.0f adaptive vs %.0f static (must match)\n",
                adaptive->measurement("bursts"), statict->measurement("bursts"));
    std::printf("  front-end firings          : %.0f adaptive vs %.0f static worst-case\n",
                adaptive->measurement("fe_firings"), statict->measurement("fe_firings"));
    std::printf("  input samples produced     : %.0f vs %.0f  (%.1fx fewer)\n",
                adaptive->measurement("src_firings"), statict->measurement("src_firings"),
                statict->measurement("src_firings") / adaptive->measurement("src_firings"));
    std::printf("  reschedules                : %llu (%llu recompiles, %llu cache hits)\n",
                static_cast<unsigned long long>(cluster.reschedule_count()),
                static_cast<unsigned long long>(cluster.recompile_count()),
                static_cast<unsigned long long>(cluster.schedule_cache_hits()));
    std::printf("  waveforms written to        adaptive_receiver_trace.dat\n");
    adaptive->save_trace("adaptive_receiver_trace.dat");
    return 0;
}
