// Seed work [8] (Grimm et al., AnalogSL): modeling analog power drivers in
// C++ — a PWM-controlled buck-style half bridge with an LC output filter and
// inductive load, driven by a DE duty-cycle controller.
//
// Ported to the scenario API: the buck testbench is *defined once* as a
// factory over typed parameters (duty, load), then a run_set sweeps the duty
// cycle across a worker pool — each run in its own simulation context — and
// aggregates mean output voltage, ripple, and solver counters into one
// result table.  Every switching edge still rewrites the switch's
// conductance stamp slot in place (numeric-only refactorization against the
// symbolic analysis cached at elaboration).
#include <cstdio>
#include <vector>

#include "core/run_set.hpp"
#include "core/scenario.hpp"
#include "eln/converter.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "kernel/signal.hpp"
#include "lib/pwm.hpp"
#include "util/measure.hpp"

namespace core = sca::core;
namespace de = sca::de;
namespace eln = sca::eln;
namespace lib = sca::lib;
using namespace sca::de::literals;

namespace {

core::scenario define_buck() {
    return core::scenario::define(
        "power_driver", core::params{{"duty", 0.5}, {"load", 4.0}},
        [](core::testbench& tb, const core::params& p) {
            auto& duty = tb.make<de::signal<double>>("duty", p.number("duty"));
            auto& gate = tb.make<de::signal<bool>>("gate", false);
            auto& pwm = tb.make<lib::pwm>("pwm", 20_us);  // 50 kHz switching
            pwm.duty.bind(duty);
            pwm.out.bind(gate);

            auto& net = tb.make<eln::network>("net");
            net.set_timestep(1.0, de::time_unit::us);
            auto gnd = net.ground();
            auto vin = net.create_node("vin");
            auto sw_node = net.create_node("sw");
            auto vout = net.create_node("vout");
            tb.make<eln::vsource>("vs", net, vin, gnd, eln::waveform::dc(24.0));
            auto& hi_side = tb.make<eln::de_rswitch>("hi_side", net, vin, sw_node,
                                                     0.05, 1e6);
            hi_side.ctrl.bind(gate);
            // Synchronous low side modeled as the freewheeling resistor path.
            tb.make<eln::resistor>("freewheel", net, sw_node, gnd, 0.5);
            tb.make<eln::inductor>("filter_l", net, sw_node, vout, 100e-6);
            tb.make<eln::capacitor>("filter_c", net, vout, gnd, 220e-6);
            tb.make<eln::resistor>("load", net, vout, gnd, p.number("load"));

            // Sample co-prime with the 20 us PWM period so ripple does not
            // alias out.
            tb.probe("vout", [&net, vout] { return net.voltage(vout); });
            tb.set_sample_period(3_us);
            tb.set_stop_time(30_ms);

            tb.measure("v_mean", [&tb] {
                const auto v = tb.waveform("vout");
                const std::vector<double> tail(v.end() - 2000, v.end());
                return sca::util::mean(tail);
            });
            tb.measure("v_ripple", [&tb] {
                const auto v = tb.waveform("vout");
                double lo = v[v.size() - 2000], hi = lo;
                for (std::size_t i = v.size() - 2000; i < v.size(); ++i) {
                    lo = std::min(lo, v[i]);
                    hi = std::max(hi, v[i]);
                }
                return hi - lo;
            });
            tb.measure("refactors", [&net] {
                return static_cast<double>(net.factorizations());
            });
            tb.measure("symbolic", [&net] {
                return static_cast<double>(net.symbolic_factorizations());
            });
        });
}

}  // namespace

int main() {
    std::printf("PWM power driver (paper seed work [8], AnalogSL scenario)\n");
    std::printf("24 V input, 50 kHz PWM, LC filter (100 uH / 220 uF), 4 ohm load\n\n");

    const auto table = core::run_set(define_buck())
                           .with_grid(core::param_grid().add(
                               "duty", {0.2, 0.35, 0.5, 0.65, 0.8}))
                           .keep_waveforms(false)
                           .run_all();

    std::printf("%8s %12s %12s %18s %10s\n", "duty", "V_out mean", "ripple pk-pk",
                "numeric refactors", "symbolic");
    for (const auto& run : table.runs()) {
        if (!run.ok) {
            std::printf("run %zu failed: %s\n", run.index, run.error.c_str());
            continue;
        }
        std::printf("%8.2f %12.3f %12.4f %18.0f %10.0f\n",
                    run.parameters.number("duty"), run.measurement("v_mean"),
                    run.measurement("v_ripple"), run.measurement("refactors"),
                    run.measurement("symbolic"));
    }
    std::printf("\nExpected shape: V_out tracks duty * 24 V (minus conduction losses);\n"
                "every PWM edge rewrites the switch stamp slot and refactors the MNA\n"
                "system numerically; the symbolic analysis (pivot order + fill\n"
                "pattern) is computed once at elaboration and reused throughout.\n"
                "The whole sweep ran as one run_set: one scenario definition, one\n"
                "independent context per duty point, all worker threads busy.\n");
    return 0;
}
