// Seed work [8] (Grimm et al., AnalogSL): modeling analog power drivers in
// C++ — a PWM-controlled buck-style half bridge with an LC output filter and
// inductive load, driven by a DE duty-cycle controller.
//
// Demonstrates the phase-3 power-electronics scenario: every switching edge
// rewrites the switch's conductance stamp slot in place and triggers a
// numeric-only refactorization against the cached symbolic analysis (the
// full restamp + symbolic pass happens exactly once, at elaboration); the
// output ripple and regulation behavior are printed for a duty-cycle sweep.
#include <cstdio>
#include <vector>

#include "core/simulation.hpp"
#include "core/transient.hpp"
#include "eln/converter.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "lib/pwm.hpp"
#include "util/measure.hpp"

namespace de = sca::de;
namespace eln = sca::eln;
namespace lib = sca::lib;
using namespace sca::de::literals;

namespace {

struct buck_result {
    double v_mean;
    double v_ripple;
    std::uint64_t refactorizations;
    std::uint64_t symbolic;
};

buck_result run_buck(double duty_value) {
    sca::core::simulation sim;

    de::signal<double> duty("duty", duty_value);
    de::signal<bool> gate("gate", false);
    lib::pwm pwm("pwm", 20_us);  // 50 kHz switching
    pwm.duty.bind(duty);
    pwm.out.bind(gate);

    eln::network net("net");
    net.set_timestep(1.0, de::time_unit::us);
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    auto sw_node = net.create_node("sw");
    auto vout = net.create_node("vout");
    eln::vsource vs("vs", net, vin, gnd, eln::waveform::dc(24.0));
    eln::de_rswitch hi_side("hi_side", net, vin, sw_node, 0.05, 1e6);
    hi_side.ctrl.bind(gate);
    // Synchronous low side modeled as the freewheeling resistor path.
    eln::resistor freewheel("freewheel", net, sw_node, gnd, 0.5);
    eln::inductor filter_l("filter_l", net, sw_node, vout, 100e-6);
    eln::capacitor filter_c("filter_c", net, vout, gnd, 220e-6);
    eln::resistor load("load", net, vout, gnd, 4.0);

    // Sample co-prime with the 20 us PWM period so ripple does not alias out.
    sca::core::transient_recorder rec(sim, 3_us);
    rec.add_probe("vout", [&] { return net.voltage(vout); });
    rec.run(30_ms);

    const auto v = rec.column(0);
    std::vector<double> tail(v.end() - 2000, v.end());
    buck_result out{};
    out.v_mean = sca::util::mean(tail);
    double lo = tail[0], hi = tail[0];
    for (double x : tail) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    out.v_ripple = hi - lo;
    out.refactorizations = net.factorizations();
    out.symbolic = net.symbolic_factorizations();
    return out;
}

}  // namespace

int main() {
    std::printf("PWM power driver (paper seed work [8], AnalogSL scenario)\n");
    std::printf("24 V input, 50 kHz PWM, LC filter (100 uH / 220 uF), 4 ohm load\n\n");
    std::printf("%8s %12s %12s %18s %10s\n", "duty", "V_out mean", "ripple pk-pk",
                "numeric refactors", "symbolic");
    for (double duty : {0.2, 0.35, 0.5, 0.65, 0.8}) {
        const auto res = run_buck(duty);
        std::printf("%8.2f %12.3f %12.4f %18llu %10llu\n", duty, res.v_mean,
                    res.v_ripple,
                    static_cast<unsigned long long>(res.refactorizations),
                    static_cast<unsigned long long>(res.symbolic));
    }
    std::printf("\nExpected shape: V_out tracks duty * 24 V (minus conduction losses);\n"
                "every PWM edge rewrites the switch stamp slot and refactors the MNA\n"
                "system numerically; the symbolic analysis (pivot order + fill\n"
                "pattern) is computed once at elaboration and reused throughout --\n"
                "the incremental-restamp pipeline the paper's phase-3 'specialized\n"
                "power-electronics MoC' motivation targets.\n");
    return 0;
}
