// Seed work [2] (Bonnerud et al.): functional-level exploration of pipelined
// A/D converter architectures.  Sweeps per-stage gain error and comparator
// offset, measures ENOB with and without digital correction, and prints the
// exploration table the paper describes ("efficient exploration of pipelined
// architectures at a more abstract level").
//
// The exploration is exactly what the scenario API is for: the ADC testbench
// is defined once over typed parameters (stages, gain_error, offset,
// correction), every table row becomes one parameter point of a run_set, and
// the whole exploration executes across the worker pool in one call.
#include <cstdio>
#include <vector>

#include "core/run_set.hpp"
#include "core/scenario.hpp"
#include "lib/oscillator.hpp"
#include "lib/pipeline_adc.hpp"
#include "tdf/port.hpp"
#include "util/measure.hpp"

namespace core = sca::core;
namespace de = sca::de;
namespace tdf = sca::tdf;
namespace lib = sca::lib;
using namespace sca::de::literals;

namespace {

struct recorder : tdf::module {
    tdf::in<double> in;
    std::vector<double> samples;
    explicit recorder(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { samples.push_back(in.read()); }
};

struct code_sink : tdf::module {
    tdf::in<std::int64_t> in;
    explicit code_sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { (void)in.read(); }
};

core::scenario define_adc() {
    return core::scenario::define(
        "pipelined_adc",
        core::params{
            {"stages", 9.0}, {"gain_error", 0.0}, {"offset", 0.0}, {"correction", 1.0}},
        [](core::testbench& tb, const core::params& p) {
            const auto stages = static_cast<unsigned>(p.number("stages"));

            auto& src = tb.make<lib::sine_source>("src", 0.95, 997.0);
            src.set_timestep(10.0, de::time_unit::us);  // 100 kS/s
            auto& adc = tb.make<lib::pipeline_adc>("adc", stages, 1.0);
            std::vector<lib::pipeline_stage_params> sp(stages);
            for (auto& s : sp) {
                s.gain_error = p.number("gain_error");
                s.offset = p.number("offset");
            }
            adc.set_stage_params(sp);
            adc.set_digital_correction(p.number("correction") > 0.5);

            auto& rec = tb.make<recorder>("rec");
            auto& codes = tb.make<code_sink>("codes");
            auto& s_in = tb.make<tdf::signal<double>>("s_in");
            auto& s_est = tb.make<tdf::signal<double>>("s_est");
            auto& s_code = tb.make<tdf::signal<std::int64_t>>("s_code");
            src.out.bind(s_in);
            adc.in.bind(s_in);
            adc.code.bind(s_code);
            adc.analog_estimate.bind(s_est);
            codes.in.bind(s_code);
            rec.in.bind(s_est);

            tb.set_stop_time(82_ms);
            tb.measure("enob", [&rec] {
                std::vector<double> tail(rec.samples.end() - 8192, rec.samples.end());
                return sca::util::enob(sca::util::sinad_db(tail, 100e3));
            });
        });
}

core::params point(double stages, double ge, double offset, bool corr) {
    return core::params{}
        .set("stages", stages)
        .set("gain_error", ge)
        .set("offset", offset)
        .set("correction", corr ? 1.0 : 0.0);
}

}  // namespace

int main() {
    std::printf("Pipelined ADC architecture exploration (paper seed work [2])\n");
    std::printf("10-bit pipeline (9 x 1.5-bit stages + flash), 100 kS/s, 997 Hz tone\n\n");

    // One run_set holds the entire exploration: the rows below index into it.
    auto sweep = core::run_set(define_adc()).keep_waveforms(false);
    sweep.add_point(point(9, 0.0, 0.0, true));                        // 0: ideal
    for (double ge : {0.0001, 0.001, 0.005, 0.02}) {                  // 1-4
        sweep.add_point(point(9, ge, 0.0, true));
    }
    sweep.add_point(point(9, 0.0, 0.1, true));                        // 5
    sweep.add_point(point(9, 0.0, 0.1, false));                       // 6
    for (unsigned stages : {5U, 7U, 9U, 11U}) {                       // 7-10
        sweep.add_point(point(stages, 0.0, 0.0, true));
    }
    const auto table = sweep.run_all();
    auto enob_at = [&](std::size_t i) { return table[i].measurement("enob"); };

    std::printf("%-34s %10s\n", "configuration", "ENOB");
    std::printf("%-34s %10.2f\n", "ideal stages, correction on", enob_at(0));

    std::printf("\nper-stage residue-amplifier gain error (correction on):\n");
    std::size_t row = 1;
    for (double ge : {0.0001, 0.001, 0.005, 0.02}) {
        char label[64];
        std::snprintf(label, sizeof label, "  gain error %.2f %%", ge * 100.0);
        std::printf("%-34s %10.2f\n", label, enob_at(row++));
    }

    std::printf("\ncomparator offset 0.1 V (vref/10):\n");
    std::printf("%-34s %10.2f\n", "  with digital correction", enob_at(5));
    std::printf("%-34s %10.2f\n", "  without digital correction", enob_at(6));

    std::printf("\nresolution scaling (ideal):\n");
    row = 7;  // rows 5-6 were the offset experiments
    for (unsigned stages : {5U, 7U, 9U, 11U}) {
        char label[64];
        std::snprintf(label, sizeof label, "  %u stages (%u bits)", stages, stages + 1);
        std::printf("%-34s %10.2f\n", label, enob_at(row++));
    }

    std::printf("\nExpected shape: ENOB tracks stages+1 for ideal pipelines, digital\n"
                "correction absorbs offsets below vref/4, and gain error caps the\n"
                "achievable resolution.\n");
    return 0;
}
