// Seed work [2] (Bonnerud et al.): functional-level exploration of pipelined
// A/D converter architectures.  Sweeps per-stage gain error and comparator
// offset, measures ENOB with and without digital correction, and prints the
// exploration table the paper describes ("efficient exploration of pipelined
// architectures at a more abstract level").
#include <cstdio>
#include <vector>

#include "core/simulation.hpp"
#include "lib/oscillator.hpp"
#include "lib/pipeline_adc.hpp"
#include "tdf/port.hpp"
#include "util/measure.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace lib = sca::lib;
using namespace sca::de::literals;

namespace {

struct recorder : tdf::module {
    tdf::in<double> in;
    std::vector<double> samples;
    explicit recorder(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { samples.push_back(in.read()); }
};

struct code_sink : tdf::module {
    tdf::in<std::int64_t> in;
    explicit code_sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { (void)in.read(); }
};

double run_adc(unsigned stages, double gain_error, double offset, bool correction) {
    sca::core::simulation sim;
    lib::sine_source src("src", 0.95, 997.0);
    src.set_timestep(10.0, de::time_unit::us);  // 100 kS/s
    lib::pipeline_adc adc("adc", stages, 1.0);
    std::vector<lib::pipeline_stage_params> params(stages);
    for (auto& p : params) {
        p.gain_error = gain_error;
        p.offset = offset;
    }
    adc.set_stage_params(params);
    adc.set_digital_correction(correction);

    recorder rec("rec");
    code_sink codes("codes");
    tdf::signal<double> s_in("s_in"), s_est("s_est");
    tdf::signal<std::int64_t> s_code("s_code");
    src.out.bind(s_in);
    adc.in.bind(s_in);
    adc.code.bind(s_code);
    adc.analog_estimate.bind(s_est);
    codes.in.bind(s_code);
    rec.in.bind(s_est);

    sim.run(82_ms);
    std::vector<double> tail(rec.samples.end() - 8192, rec.samples.end());
    return sca::util::enob(sca::util::sinad_db(tail, 100e3));
}

}  // namespace

int main() {
    std::printf("Pipelined ADC architecture exploration (paper seed work [2])\n");
    std::printf("10-bit pipeline (9 x 1.5-bit stages + flash), 100 kS/s, 997 Hz tone\n\n");

    std::printf("%-34s %10s\n", "configuration", "ENOB");
    std::printf("%-34s %10.2f\n", "ideal stages, correction on",
                run_adc(9, 0.0, 0.0, true));

    std::printf("\nper-stage residue-amplifier gain error (correction on):\n");
    for (double ge : {0.0001, 0.001, 0.005, 0.02}) {
        char label[64];
        std::snprintf(label, sizeof label, "  gain error %.2f %%", ge * 100.0);
        std::printf("%-34s %10.2f\n", label, run_adc(9, ge, 0.0, true));
    }

    std::printf("\ncomparator offset 0.1 V (vref/10):\n");
    std::printf("%-34s %10.2f\n", "  with digital correction",
                run_adc(9, 0.0, 0.1, true));
    std::printf("%-34s %10.2f\n", "  without digital correction",
                run_adc(9, 0.0, 0.1, false));

    std::printf("\nresolution scaling (ideal):\n");
    for (unsigned stages : {5U, 7U, 9U, 11U}) {
        char label[64];
        std::snprintf(label, sizeof label, "  %u stages (%u bits)", stages, stages + 1);
        std::printf("%-34s %10.2f\n", label, run_adc(stages, 0.0, 0.0, true));
    }

    std::printf("\nExpected shape: ENOB tracks stages+1 for ideal pipelines, digital\n"
                "correction absorbs offsets below vref/4, and gain error caps the\n"
                "achievable resolution.\n");
    return 0;
}
