// Phase-2 RF/wireless scenario (paper §2): dataflow model of a receiver
// front-end — LNA with saturation, quadrature downconversion mixer, IF
// filter — plus the frequency-domain characterization (AC + noise) of the
// analog channel-select filter, the analyses phase 1/2 mandate.
#include <cstdio>
#include <vector>

#include "core/ac_analysis.hpp"
#include "core/noise_analysis.hpp"
#include "core/simulation.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "lib/amplifier.hpp"
#include "lib/filters.hpp"
#include "lib/mixer.hpp"
#include "lib/oscillator.hpp"
#include "tdf/port.hpp"
#include "util/fft.hpp"
#include "util/measure.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;
namespace lib = sca::lib;
namespace solver = sca::solver;
using namespace sca::de::literals;

namespace {

struct recorder : tdf::module {
    tdf::in<double> in;
    std::vector<double> samples;
    explicit recorder(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { samples.push_back(in.read()); }
};

}  // namespace

int main() {
    // ------------------------------------------------------------ time domain
    sca::core::simulation sim;
    const double f_rf = 455e3;
    const double f_lo = 445e3;  // IF = 10 kHz
    const de::time fs_step(0.2, de::time_unit::us);  // 5 MHz dataflow rate

    lib::sine_source rf_in("rf_in", 20e-3, f_rf);
    rf_in.set_timestep(fs_step);
    lib::amplifier lna("lna", 20.0, 1.0, -1.0);  // saturating LNA
    lib::quadrature_oscillator lo("lo", 1.0, f_lo);
    lib::mixer mix_i("mix_i", 2.0);
    lib::fir if_filter("if_filter", lib::fir::design_lowpass(127, 0.005));  // 25 kHz
    recorder if_out("if_out");

    struct sink : tdf::module {
        tdf::in<double> in;
        explicit sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
        void processing() override { (void)in.read(); }
    } q_sink("q_sink");

    tdf::signal<double> w_rf("w_rf"), w_lna("w_lna"), w_loi("w_loi"), w_loq("w_loq"),
        w_mix("w_mix"), w_if("w_if");
    rf_in.out.bind(w_rf);
    lna.in.bind(w_rf);
    lna.out.bind(w_lna);
    lo.out_i.bind(w_loi);
    lo.out_q.bind(w_loq);
    q_sink.in.bind(w_loq);
    mix_i.rf.bind(w_lna);
    mix_i.lo.bind(w_loi);
    mix_i.out.bind(w_mix);
    if_filter.in.bind(w_mix);
    if_filter.out.bind(w_if);
    if_out.in.bind(w_if);

    sim.run(10_ms);

    std::vector<double> tail(if_out.samples.end() - 16384, if_out.samples.end());
    const auto spec = sca::util::magnitude_spectrum(tail, 5e6);
    double peak_mag = 0.0, peak_freq = 0.0;
    for (const auto& bin : spec) {
        if (bin.frequency > 1e3 && bin.frequency < 100e3 && bin.magnitude > peak_mag) {
            peak_mag = bin.magnitude;
            peak_freq = bin.frequency;
        }
    }

    std::printf("RF receiver front-end (paper phase 2 scenario)\n\n");
    std::printf("time-domain dataflow run (5 MHz rate, 10 ms):\n");
    std::printf("  RF input     : %.0f kHz, 20 mVp\n", f_rf / 1e3);
    std::printf("  LO           : %.0f kHz quadrature\n", f_lo / 1e3);
    std::printf("  IF peak      : %.1f kHz (expect 10.0 kHz), magnitude %.3f\n",
                peak_freq / 1e3, peak_mag);

    // ------------------------------------------------- frequency domain (ELN)
    // Channel-select LC bandpass characterized by AC + noise analysis.
    sca::core::simulation sim2;
    eln::network filt("filt");
    filt.set_timestep(1.0, de::time_unit::us);
    auto gnd = filt.ground();
    auto n1 = filt.create_node("n1");
    auto n2 = filt.create_node("n2");
    eln::vsource src("src", filt, n1, gnd, eln::waveform::dc(0.0));
    src.set_ac(1.0);
    eln::resistor rs("rs", filt, n1, n2, 10e3);
    eln::inductor l1("l1", filt, n2, gnd, 10e-3);
    eln::capacitor c1("c1", filt, n2, gnd, 24.8e-9);  // ~10.1 kHz tank
    sim2.elaborate();

    sca::core::ac_analysis ac(filt);
    const auto pts = ac.sweep(n2.index(), {1e3, 100e3, 61, solver::sweep::scale::logarithmic});
    double best_mag = -1e9, best_f = 0.0;
    for (const auto& p : pts) {
        if (p.magnitude_db() > best_mag) {
            best_mag = p.magnitude_db();
            best_f = p.frequency;
        }
    }

    sca::core::noise_analysis na(filt);
    const auto noise = na.run(n2.index(), {100.0, 1e6, 200});

    std::printf("\nfrequency-domain characterization of the IF tank (ELN view):\n");
    std::printf("  AC peak      : %.1f kHz at %.2f dB\n", best_f / 1e3, best_mag);
    std::printf("  output noise : %.2f uV rms (100 Hz - 1 MHz, 4kTR sources)\n",
                noise.integrated_rms() * 1e6);
    std::printf("\nExpected shape: IF at |f_rf - f_lo|, tank peak at the LC resonance,\n"
                "noise dominated by the source resistor shaped by the tank.\n");
    return 0;
}
