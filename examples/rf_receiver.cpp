// Phase-2 RF/wireless scenario (paper §2): dataflow model of a receiver
// front-end — LNA with saturation, quadrature downconversion mixer, IF
// filter — plus the frequency-domain characterization (AC + noise) of the
// analog channel-select filter, the analyses phase 1/2 mandate.
//
// Scenario-API version: the receiver chain is one scenario (RF/LO
// frequencies as typed parameters, the IF peak extracted as measurements);
// the IF tank is a second scenario whose single testbench handle feeds the
// AC and noise analyses directly — no hand-rebuilt model per analysis.
#include <cstdio>
#include <vector>

#include "core/ac_analysis.hpp"
#include "core/noise_analysis.hpp"
#include "core/scenario.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "lib/amplifier.hpp"
#include "lib/filters.hpp"
#include "lib/mixer.hpp"
#include "lib/oscillator.hpp"
#include "tdf/port.hpp"
#include "util/fft.hpp"
#include "util/measure.hpp"

namespace core = sca::core;
namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;
namespace lib = sca::lib;
namespace solver = sca::solver;
using namespace sca::de::literals;

namespace {

struct recorder : tdf::module {
    tdf::in<double> in;
    std::vector<double> samples;
    explicit recorder(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { samples.push_back(in.read()); }
};

struct sink : tdf::module {
    tdf::in<double> in;
    explicit sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { (void)in.read(); }
};

core::scenario define_receiver() {
    return core::scenario::define(
        "rf_receiver", core::params{{"f_rf", 455e3}, {"f_lo", 445e3}},
        [](core::testbench& tb, const core::params& p) {
            const de::time fs_step(0.2, de::time_unit::us);  // 5 MHz rate

            auto& rf_in = tb.make<lib::sine_source>("rf_in", 20e-3, p.number("f_rf"));
            rf_in.set_timestep(fs_step);
            auto& lna = tb.make<lib::amplifier>("lna", 20.0, 1.0, -1.0);
            auto& lo = tb.make<lib::quadrature_oscillator>("lo", 1.0, p.number("f_lo"));
            auto& mix_i = tb.make<lib::mixer>("mix_i", 2.0);
            auto& if_filter = tb.make<lib::fir>(
                "if_filter", lib::fir::design_lowpass(127, 0.005));  // 25 kHz
            auto& if_out = tb.make<recorder>("if_out");
            auto& q_sink = tb.make<sink>("q_sink");

            auto& w_rf = tb.make<tdf::signal<double>>("w_rf");
            auto& w_lna = tb.make<tdf::signal<double>>("w_lna");
            auto& w_loi = tb.make<tdf::signal<double>>("w_loi");
            auto& w_loq = tb.make<tdf::signal<double>>("w_loq");
            auto& w_mix = tb.make<tdf::signal<double>>("w_mix");
            auto& w_if = tb.make<tdf::signal<double>>("w_if");
            rf_in.out.bind(w_rf);
            lna.in.bind(w_rf);
            lna.out.bind(w_lna);
            lo.out_i.bind(w_loi);
            lo.out_q.bind(w_loq);
            q_sink.in.bind(w_loq);
            mix_i.rf.bind(w_lna);
            mix_i.lo.bind(w_loi);
            mix_i.out.bind(w_mix);
            if_filter.in.bind(w_mix);
            if_filter.out.bind(w_if);
            if_out.in.bind(w_if);

            tb.set_stop_time(10_ms);
            // IF peak from the spectrum of the recorded tail; the 16k-point
            // spectrum is scanned once per run and shared by both
            // measurements (invalidated by the growing sample count).
            struct peak_cache {
                std::size_t computed_at = 0;
                double freq = 0.0, mag = 0.0;
            };
            auto& cache = tb.make<peak_cache>();
            auto peak = [&if_out, &cache](bool want_freq) {
                if (cache.computed_at != if_out.samples.size()) {
                    std::vector<double> tail(if_out.samples.end() - 16384,
                                             if_out.samples.end());
                    const auto spec = sca::util::magnitude_spectrum(tail, 5e6);
                    cache = {if_out.samples.size(), 0.0, 0.0};
                    for (const auto& bin : spec) {
                        if (bin.frequency > 1e3 && bin.frequency < 100e3 &&
                            bin.magnitude > cache.mag) {
                            cache.mag = bin.magnitude;
                            cache.freq = bin.frequency;
                        }
                    }
                }
                return want_freq ? cache.freq : cache.mag;
            };
            tb.measure("if_peak_freq", [peak] { return peak(true); });
            tb.measure("if_peak_mag", [peak] { return peak(false); });
        });
}

core::scenario define_if_tank() {
    return core::scenario::define(
        "if_tank", core::params{{"l", 10e-3}, {"c", 24.8e-9}},
        [](core::testbench& tb, const core::params& p) {
            auto& filt = tb.make<eln::network>("filt");
            filt.set_timestep(1.0, de::time_unit::us);
            auto gnd = filt.ground();
            auto n1 = filt.create_node("n1");
            auto n2 = filt.create_node("n2");
            auto& src = tb.make<eln::vsource>("src", filt, n1, gnd,
                                              eln::waveform::dc(0.0));
            src.set_ac(1.0);
            tb.make<eln::resistor>("rs", filt, n1, n2, 10e3);
            tb.make<eln::inductor>("l1", filt, n2, gnd, p.number("l"));
            tb.make<eln::capacitor>("c1", filt, n2, gnd, p.number("c"));
            tb.note("out", double(n2.index()));
        });
}

}  // namespace

int main() {
    // ------------------------------------------------------------ time domain
    auto rx = define_receiver().build();
    rx->run();

    std::printf("RF receiver front-end (paper phase 2 scenario)\n\n");
    std::printf("time-domain dataflow run (5 MHz rate, 10 ms):\n");
    std::printf("  RF input     : %.0f kHz, 20 mVp\n",
                rx->parameters().number("f_rf") / 1e3);
    std::printf("  LO           : %.0f kHz quadrature\n",
                rx->parameters().number("f_lo") / 1e3);
    std::printf("  IF peak      : %.1f kHz (expect 10.0 kHz), magnitude %.3f\n",
                rx->measurement("if_peak_freq") / 1e3, rx->measurement("if_peak_mag"));

    // ------------------------------------------------- frequency domain (ELN)
    // Channel-select LC bandpass characterized by AC + noise analysis on the
    // same testbench handle (no transient needed first).
    auto tank = define_if_tank().build();
    const auto out = static_cast<std::size_t>(tank->note("out"));

    core::ac_analysis ac(*tank);
    const auto pts = ac.sweep(out, {1e3, 100e3, 61, solver::sweep::scale::logarithmic});
    double best_mag = -1e9, best_f = 0.0;
    for (const auto& p : pts) {
        if (p.magnitude_db() > best_mag) {
            best_mag = p.magnitude_db();
            best_f = p.frequency;
        }
    }

    core::noise_analysis na(*tank);
    const auto noise = na.run(out, {100.0, 1e6, 200});

    std::printf("\nfrequency-domain characterization of the IF tank (ELN view):\n");
    std::printf("  AC peak      : %.1f kHz at %.2f dB\n", best_f / 1e3, best_mag);
    std::printf("  output noise : %.2f uV rms (100 Hz - 1 MHz, 4kTR sources)\n",
                noise.integrated_rms() * 1e6);
    std::printf("\nExpected shape: IF at |f_rf - f_lo|, tank peak at the LC resonance,\n"
                "noise dominated by the source resistor shaped by the tank.\n");
    return 0;
}
