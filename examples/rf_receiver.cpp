// Phase-2 RF/wireless scenario (paper §2), built hierarchically: the
// receiver front-end — LNA with saturation, quadrature downconversion mixer,
// IF filter — is one reusable tdf::composite exposing rf-in/if-out ports,
// and the analog channel-select tank is an eln::subcircuit bound by
// terminals.  The frequency-domain characterization (AC + noise) of the tank
// runs on the same testbench handle, as phase 1/2 mandate.
//
// Scenario-API version: the receiver chain is one scenario (RF/LO
// frequencies as typed parameters, the IF peak extracted as measurements);
// the IF tank is a second scenario whose single testbench handle feeds the
// AC and noise analyses directly — no hand-rebuilt model per analysis.
#include <cstdio>
#include <vector>

#include "core/ac_analysis.hpp"
#include "core/noise_analysis.hpp"
#include "core/scenario.hpp"
#include "eln/network.hpp"
#include "eln/sources.hpp"
#include "eln/subcircuit.hpp"
#include "lib/amplifier.hpp"
#include "lib/filters.hpp"
#include "lib/mixer.hpp"
#include "lib/oscillator.hpp"
#include "tdf/connect.hpp"
#include "tdf/port.hpp"
#include "util/fft.hpp"
#include "util/measure.hpp"

namespace core = sca::core;
namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;
namespace lib = sca::lib;
namespace solver = sca::solver;
using namespace sca::de::literals;

namespace {

struct recorder : tdf::module {
    tdf::in<double> in;
    std::vector<double> samples;
    explicit recorder(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { samples.push_back(in.read()); }
};

struct sink : tdf::module {
    tdf::in<double> in;
    explicit sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { (void)in.read(); }
};

/// The receiver front-end as a reusable subsystem: rf in, downconverted and
/// channel-filtered IF out.  Internal wiring (including the discarded Q
/// path) never leaks into the testbench.
struct receiver_chain : tdf::composite {
    tdf::in<double> rf;
    tdf::out<double> if_out;

    receiver_chain(const de::module_name& nm, double f_lo)
        : tdf::composite(nm), rf("rf"), if_out("if_out") {
        auto& lna = make_child<lib::amplifier>("lna", 20.0, 1.0, -1.0);
        auto& lo = make_child<lib::quadrature_oscillator>("lo", 1.0, f_lo);
        auto& mix_i = make_child<lib::mixer>("mix_i", 2.0);
        auto& if_filter = make_child<lib::fir>(
            "if_filter", lib::fir::design_lowpass(127, 0.005));  // 25 kHz
        auto& q_sink = make_child<sink>("q_sink");

        lna.in.bind(rf);  // forwarded subsystem input
        connect(lna.out, mix_i.rf);
        connect(lo.out_i, mix_i.lo);
        connect(lo.out_q, q_sink.in);
        connect(mix_i.out, if_filter.in);
        if_filter.out.bind(if_out);  // exported subsystem output
    }
};

/// Channel-select LC tank as a terminal-bound subcircuit: series source
/// resistor into a parallel LC to ground.
struct lc_tank : eln::subcircuit {
    eln::terminal in, out, ref;
    eln::resistor rs;
    eln::inductor l1;
    eln::capacitor c1;

    lc_tank(const de::module_name& nm, eln::network& net, double l, double c)
        : subcircuit(nm, net), in("in", *this), out("out", *this), ref("ref", *this),
          rs("rs", net, 10e3), l1("l1", net, l), c1("c1", net, c) {
        rs.p(in);
        rs.n(out);
        l1.p(out);
        l1.n(ref);
        c1.p(out);
        c1.n(ref);
    }
};

core::scenario define_receiver() {
    return core::scenario::define(
        "rf_receiver", core::params{{"f_rf", 455e3}, {"f_lo", 445e3}},
        [](core::testbench& tb, const core::params& p) {
            const de::time fs_step(0.2, de::time_unit::us);  // 5 MHz rate

            auto& rf_in = tb.make<lib::sine_source>("rf_in", 20e-3, p.number("f_rf"));
            rf_in.set_timestep(fs_step);
            auto& rx = tb.make<receiver_chain>("rx", p.number("f_lo"));
            auto& if_out = tb.make<recorder>("if_out");

            connect(rf_in.out, rx.rf);
            connect(rx.if_out, if_out.in);

            tb.set_stop_time(10_ms);
            // IF peak from the spectrum of the recorded tail; the 16k-point
            // spectrum is scanned once per run and shared by both
            // measurements (invalidated by the growing sample count).
            struct peak_cache {
                std::size_t computed_at = 0;
                double freq = 0.0, mag = 0.0;
            };
            auto& cache = tb.make<peak_cache>();
            auto peak = [&if_out, &cache](bool want_freq) {
                if (cache.computed_at != if_out.samples.size()) {
                    std::vector<double> tail(if_out.samples.end() - 16384,
                                             if_out.samples.end());
                    const auto spec = sca::util::magnitude_spectrum(tail, 5e6);
                    cache = {if_out.samples.size(), 0.0, 0.0};
                    for (const auto& bin : spec) {
                        if (bin.frequency > 1e3 && bin.frequency < 100e3 &&
                            bin.magnitude > cache.mag) {
                            cache.mag = bin.magnitude;
                            cache.freq = bin.frequency;
                        }
                    }
                }
                return want_freq ? cache.freq : cache.mag;
            };
            tb.measure("if_peak_freq", [peak] { return peak(true); });
            tb.measure("if_peak_mag", [peak] { return peak(false); });
        });
}

core::scenario define_if_tank() {
    return core::scenario::define(
        "if_tank", core::params{{"l", 10e-3}, {"c", 24.8e-9}},
        [](core::testbench& tb, const core::params& p) {
            auto& filt = tb.make<eln::network>("filt");
            filt.set_timestep(1.0, de::time_unit::us);
            auto gnd = filt.ground();
            auto n1 = filt.create_node("n1");
            auto n2 = filt.create_node("n2");
            auto& src = tb.make<eln::vsource>("src", filt, n1, gnd,
                                              eln::waveform::dc(0.0));
            src.set_ac(1.0);
            auto& tank =
                tb.make<lc_tank>("tank", filt, p.number("l"), p.number("c"));
            tank.in(n1);
            tank.out(n2);
            tank.ref(gnd);
            tb.note("out", double(n2.index()));
        });
}

}  // namespace

int main() {
    // ------------------------------------------------------------ time domain
    auto rx = define_receiver().build();
    rx->run();

    std::printf("RF receiver front-end (paper phase 2 scenario)\n\n");
    std::printf("time-domain dataflow run (5 MHz rate, 10 ms):\n");
    std::printf("  RF input     : %.0f kHz, 20 mVp\n",
                rx->parameters().number("f_rf") / 1e3);
    std::printf("  LO           : %.0f kHz quadrature\n",
                rx->parameters().number("f_lo") / 1e3);
    std::printf("  IF peak      : %.1f kHz (expect 10.0 kHz), magnitude %.3f\n",
                rx->measurement("if_peak_freq") / 1e3, rx->measurement("if_peak_mag"));

    // ------------------------------------------------- frequency domain (ELN)
    // Channel-select LC bandpass characterized by AC + noise analysis on the
    // same testbench handle (no transient needed first).
    auto tank = define_if_tank().build();
    const auto out = static_cast<std::size_t>(tank->note("out"));

    core::ac_analysis ac(*tank);
    const auto pts = ac.sweep(out, {1e3, 100e3, 61, solver::sweep::scale::logarithmic});
    double best_mag = -1e9, best_f = 0.0;
    for (const auto& p : pts) {
        if (p.magnitude_db() > best_mag) {
            best_mag = p.magnitude_db();
            best_f = p.frequency;
        }
    }

    core::noise_analysis na(*tank);
    const auto noise = na.run(out, {100.0, 1e6, 200});

    std::printf("\nfrequency-domain characterization of the IF tank (ELN view):\n");
    std::printf("  AC peak      : %.1f kHz at %.2f dB\n", best_f / 1e3, best_mag);
    std::printf("  output noise : %.2f uV rms (100 Hz - 1 MHz, 4kTR sources)\n",
                noise.integrated_rms() * 1e6);
    std::printf("\nExpected shape: IF at |f_rf - f_lo|, tank peak at the LC resonance,\n"
                "noise dominated by the source resistor shaped by the tank.\n");
    return 0;
}
