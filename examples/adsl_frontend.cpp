// Figure 1 of the paper: the ADSL subscriber line interface and codec
// filter, as an executable multi-MoC specification.
//
//   tone "DSP" (TDF)  ->  line driver (LSF: Butterworth + gain)
//                     ->  subscriber line + hybrid (ELN network)
//                     ->  sigma-delta prefi (TDF) -> sinc3 pofi (TDF)
//                     ->  DSP receive FIR (TDF)
//   software controller (DE) watches line activity and gates the receive
//   path — the "Control / software controller" block of the figure.
//
// The example prints per-MoC statistics and the end-to-end signal quality.
#include <cstdio>
#include <vector>

#include "core/simulation.hpp"
#include "eln/converter.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "lib/converters.hpp"
#include "lib/filters.hpp"
#include "lib/oscillator.hpp"
#include "lib/sigma_delta.hpp"
#include "lsf/ltf.hpp"
#include "lsf/node.hpp"
#include "lsf/primitives.hpp"
#include "lsf/view.hpp"
#include "util/measure.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;
namespace lsf = sca::lsf;
namespace lib = sca::lib;
using namespace sca::de::literals;

namespace {

struct rx_recorder : tdf::module {
    tdf::in<double> in;
    std::vector<double> samples;
    explicit rx_recorder(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { samples.push_back(in.read()); }
};

struct bool_sink : tdf::module {
    tdf::in<bool> in;
    explicit bool_sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { (void)in.read(); }
};

}  // namespace

int main() {
    sca::core::simulation sim;
    const de::time codec_step(0.5, de::time_unit::us);  // 2 MHz modulator rate

    // --- transmit "DSP": upstream tone (stands in for the DMT symbol stream).
    lib::sine_source tone("tone", 0.5, 10e3);
    tone.set_timestep(codec_step);

    // --- line driver: 3rd-order Butterworth + high-voltage gain (LSF).
    lsf::system driver("driver");
    auto u = driver.create_signal("u");
    auto filtered = driver.create_signal("filtered");
    auto boosted = driver.create_signal("boosted");
    lsf::from_tdf drv_in("drv_in", driver, u);
    const auto tf = lsf::filters::butterworth_lowpass(3, 150e3);
    lsf::ltf_nd drv_filter("drv_filter", driver, u, filtered, tf.num, tf.den);
    lsf::gain drv_gain("drv_gain", driver, filtered, boosted, 1.2);
    lsf::to_tdf drv_out("drv_out", driver, boosted);

    // --- subscriber line: source impedance, line RC, termination (ELN).
    eln::network line("line");
    auto gnd = line.ground();
    auto tx = line.create_node("tx");
    auto mid = line.create_node("mid");
    auto rx = line.create_node("rx");
    eln::tdf_vsource drv_src("drv_src", line, tx, gnd);
    eln::resistor r_s("r_s", line, tx, mid, 100.0);
    eln::capacitor c_line("c_line", line, mid, gnd, 10e-9);
    eln::resistor r_line("r_line", line, mid, rx, 100.0);
    eln::resistor r_term("r_term", line, rx, gnd, 100.0);
    eln::tdf_vsink rx_probe("rx_probe", line, rx, gnd);

    // --- receive codec: sigma-delta prefi + sinc3 pofi + DSP FIR (TDF).
    lib::sigma_delta_modulator prefi("prefi", 2, 1.0);
    lib::sinc3_decimator pofi("pofi", 32);  // -> 62.5 kHz
    lib::fir rx_fir("rx_fir", lib::fir::design_lowpass(63, 0.4));
    rx_recorder rx_out("rx_out");

    // --- software controller (DE): link activity detector.
    lib::comparator level("level", 0.05, 0.02);
    de::signal<bool> line_active("line_active", false);
    level.enable_de_output(line_active);
    int link_events = 0;
    auto& controller = sim.context().register_method("controller", [&] {
        ++link_events;
    });
    controller.dont_initialize();
    controller.make_sensitive(line_active.value_changed_event());

    // --- wiring.
    tdf::signal<double> w_tone("w_tone"), w_drv("w_drv"), w_rx("w_rx"), w_mod("w_mod"),
        w_dec("w_dec"), w_fir("w_fir");
    tdf::signal<bool> w_act("w_act");
    tone.out.bind(w_tone);
    drv_in.inp.bind(w_tone);
    drv_out.outp.bind(w_drv);
    drv_src.inp.bind(w_drv);
    rx_probe.outp.bind(w_rx);
    prefi.in.bind(w_rx);
    prefi.out.bind(w_mod);
    pofi.in.bind(w_mod);
    pofi.out.bind(w_dec);
    rx_fir.in.bind(w_dec);
    rx_fir.out.bind(w_fir);
    rx_out.in.bind(w_fir);
    level.in.bind(w_rx);
    level.out.bind(w_act);
    bool_sink bs("bs");
    bs.in.bind(w_act);

    const double sim_seconds = 20e-3;
    sim.run(de::time::from_seconds(sim_seconds));

    // --- report.
    std::vector<double> tail(rx_out.samples.end() - 512, rx_out.samples.end());
    const double fs_out = 2e6 / 32.0;
    const double sinad = sca::util::sinad_db(tail, fs_out);
    double amp = 0.0;
    for (double v : tail) amp = std::max(amp, std::abs(v));

    std::printf("ADSL subscriber line interface (paper Figure 1), %.0f ms simulated\n",
                sim_seconds * 1e3);
    std::printf("  MoC inventory:\n");
    std::printf("    TDF  modulator activations : %llu (2 MHz)\n",
                static_cast<unsigned long long>(prefi.activation_count()));
    std::printf("    TDF  decimator activations : %llu (62.5 kHz)\n",
                static_cast<unsigned long long>(pofi.activation_count()));
    std::printf("    LSF  driver solver steps   : %llu\n",
                static_cast<unsigned long long>(driver.activation_count()));
    std::printf("    ELN  line solver steps     : %llu (factored %llu time(s))\n",
                static_cast<unsigned long long>(line.activation_count()),
                static_cast<unsigned long long>(line.factorizations()));
    std::printf("    DE   controller events     : %d\n", link_events);
    std::printf("  receive path quality:\n");
    std::printf("    recovered 10 kHz amplitude : %.3f (expect ~0.18: tone 0.5 x\n"
                "                                 driver 1.2 x line divider 1/3 x\n"
                "                                 line C shunt x sinc3 droop 0.88)\n",
                amp);
    std::printf("    SINAD through the codec    : %.1f dB\n", sinad);
    return 0;
}
