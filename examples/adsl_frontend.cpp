// Figure 1 of the paper: the ADSL subscriber line interface and codec
// filter, as an executable multi-MoC specification.
//
//   tone "DSP" (TDF)  ->  line driver (LSF: Butterworth + gain)
//                     ->  subscriber line + hybrid (ELN network)
//                     ->  sigma-delta prefi (TDF) -> sinc3 pofi (TDF)
//                     ->  DSP receive FIR (TDF)
//   software controller (DE) watches line activity and gates the receive
//   path — the "Control / software controller" block of the figure.
//
// Defined as one scenario spanning all four MoCs; the per-MoC statistics and
// end-to-end signal quality come out as named measurements.
#include <cstdio>
#include <vector>

#include "core/scenario.hpp"
#include "eln/converter.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "lib/converters.hpp"
#include "lib/filters.hpp"
#include "lib/oscillator.hpp"
#include "lib/sigma_delta.hpp"
#include "lsf/ltf.hpp"
#include "lsf/node.hpp"
#include "lsf/primitives.hpp"
#include "lsf/view.hpp"
#include "util/measure.hpp"

namespace core = sca::core;
namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;
namespace lsf = sca::lsf;
namespace lib = sca::lib;
using namespace sca::de::literals;

namespace {

struct rx_recorder : tdf::module {
    tdf::in<double> in;
    std::vector<double> samples;
    explicit rx_recorder(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { samples.push_back(in.read()); }
};

struct bool_sink : tdf::module {
    tdf::in<bool> in;
    explicit bool_sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { (void)in.read(); }
};

core::scenario define_adsl() {
    return core::scenario::define(
        "adsl_frontend", core::params{{"f_tone", 10e3}, {"tone_amp", 0.5}},
        [](core::testbench& tb, const core::params& p) {
            const de::time codec_step(0.5, de::time_unit::us);  // 2 MHz rate

            // --- transmit "DSP": upstream tone (stands in for DMT symbols).
            auto& tone = tb.make<lib::sine_source>("tone", p.number("tone_amp"),
                                                   p.number("f_tone"));
            tone.set_timestep(codec_step);

            // --- line driver: 3rd-order Butterworth + gain (LSF).
            auto& driver = tb.make<lsf::system>("driver");
            auto u = driver.create_signal("u");
            auto filtered = driver.create_signal("filtered");
            auto boosted = driver.create_signal("boosted");
            auto& drv_in = tb.make<lsf::from_tdf>("drv_in", driver, u);
            const auto tf = lsf::filters::butterworth_lowpass(3, 150e3);
            tb.make<lsf::ltf_nd>("drv_filter", driver, u, filtered, tf.num, tf.den);
            tb.make<lsf::gain>("drv_gain", driver, filtered, boosted, 1.2);
            auto& drv_out = tb.make<lsf::to_tdf>("drv_out", driver, boosted);

            // --- subscriber line: source impedance, line RC, termination.
            auto& line = tb.make<eln::network>("line");
            auto gnd = line.ground();
            auto tx = line.create_node("tx");
            auto mid = line.create_node("mid");
            auto rx = line.create_node("rx");
            auto& drv_src = tb.make<eln::tdf_vsource>("drv_src", line, tx, gnd);
            tb.make<eln::resistor>("r_s", line, tx, mid, 100.0);
            tb.make<eln::capacitor>("c_line", line, mid, gnd, 10e-9);
            tb.make<eln::resistor>("r_line", line, mid, rx, 100.0);
            tb.make<eln::resistor>("r_term", line, rx, gnd, 100.0);
            auto& rx_probe = tb.make<eln::tdf_vsink>("rx_probe", line, rx, gnd);

            // --- receive codec: sigma-delta prefi + sinc3 pofi + FIR (TDF).
            auto& prefi = tb.make<lib::sigma_delta_modulator>("prefi", 2, 1.0);
            auto& pofi = tb.make<lib::sinc3_decimator>("pofi", 32);  // 62.5 kHz
            auto& rx_fir = tb.make<lib::fir>("rx_fir", lib::fir::design_lowpass(63, 0.4));
            auto& rx_out = tb.make<rx_recorder>("rx_out");

            // --- software controller (DE): link activity detector.
            auto& level = tb.make<lib::comparator>("level", 0.05, 0.02);
            auto& line_active = tb.make<de::signal<bool>>("line_active", false);
            level.enable_de_output(line_active);
            struct link_counter {
                int events = 0;
            };
            auto& lc = tb.make<link_counter>();
            auto& controller = tb.context().register_method(
                "controller", [&lc] { ++lc.events; });
            controller.dont_initialize();
            controller.make_sensitive(line_active.value_changed_event());

            // --- wiring.
            auto& w_tone = tb.make<tdf::signal<double>>("w_tone");
            auto& w_drv = tb.make<tdf::signal<double>>("w_drv");
            auto& w_rx = tb.make<tdf::signal<double>>("w_rx");
            auto& w_mod = tb.make<tdf::signal<double>>("w_mod");
            auto& w_dec = tb.make<tdf::signal<double>>("w_dec");
            auto& w_fir = tb.make<tdf::signal<double>>("w_fir");
            auto& w_act = tb.make<tdf::signal<bool>>("w_act");
            tone.out.bind(w_tone);
            drv_in.inp.bind(w_tone);
            drv_out.outp.bind(w_drv);
            drv_src.inp.bind(w_drv);
            rx_probe.outp.bind(w_rx);
            prefi.in.bind(w_rx);
            prefi.out.bind(w_mod);
            pofi.in.bind(w_mod);
            pofi.out.bind(w_dec);
            rx_fir.in.bind(w_dec);
            rx_fir.out.bind(w_fir);
            rx_out.in.bind(w_fir);
            level.in.bind(w_rx);
            level.out.bind(w_act);
            auto& bs = tb.make<bool_sink>("bs");
            bs.in.bind(w_act);

            tb.set_stop_time(20_ms);
            const double fs_out = 2e6 / 32.0;
            tb.measure("sinad_db", [&rx_out, fs_out] {
                std::vector<double> tail(rx_out.samples.end() - 512,
                                         rx_out.samples.end());
                return sca::util::sinad_db(tail, fs_out);
            });
            tb.measure("rx_amplitude", [&rx_out] {
                double amp = 0.0;
                for (auto it = rx_out.samples.end() - 512; it != rx_out.samples.end();
                     ++it) {
                    amp = std::max(amp, std::abs(*it));
                }
                return amp;
            });
            tb.measure("prefi_activations",
                       [&prefi] { return double(prefi.activation_count()); });
            tb.measure("pofi_activations",
                       [&pofi] { return double(pofi.activation_count()); });
            tb.measure("driver_steps",
                       [&driver] { return double(driver.activation_count()); });
            tb.measure("line_steps",
                       [&line] { return double(line.activation_count()); });
            tb.measure("line_factorizations",
                       [&line] { return double(line.factorizations()); });
            tb.measure("link_events", [&lc] { return double(lc.events); });
        });
}

}  // namespace

int main() {
    auto tb = define_adsl().build();
    tb->run();

    std::printf("ADSL subscriber line interface (paper Figure 1), %.0f ms simulated\n",
                tb->sim().now().to_seconds() * 1e3);
    std::printf("  MoC inventory:\n");
    std::printf("    TDF  modulator activations : %.0f (2 MHz)\n",
                tb->measurement("prefi_activations"));
    std::printf("    TDF  decimator activations : %.0f (62.5 kHz)\n",
                tb->measurement("pofi_activations"));
    std::printf("    LSF  driver solver steps   : %.0f\n",
                tb->measurement("driver_steps"));
    std::printf("    ELN  line solver steps     : %.0f (factored %.0f time(s))\n",
                tb->measurement("line_steps"), tb->measurement("line_factorizations"));
    std::printf("    DE   controller events     : %.0f\n",
                tb->measurement("link_events"));
    std::printf("  receive path quality:\n");
    std::printf("    recovered 10 kHz amplitude : %.3f (expect ~0.18: tone 0.5 x\n"
                "                                 driver 1.2 x line divider 1/3 x\n"
                "                                 line C shunt x sinc3 droop 0.88)\n",
                tb->measurement("rx_amplitude"));
    std::printf("    SINAD through the codec    : %.1f dB\n",
                tb->measurement("sinad_db"));
    return 0;
}
