// Hardware-in-the-loop client: drive a live session of the streaming
// simulation server from outside the process boundary.
//
// The "plant" is a first-order lag tracking a pokeable setpoint — the
// classic stand-in for a thermal chamber or actuator under test.  The
// server side runs it as a registered scenario inside sim_server; the
// client side plays the role of the external test harness: it opens a
// session over loopback TCP, subscribes to the plant output, paces the
// kernel to wall-clock speed (1x — the defining constraint of HIL), and
// when it sees the plant settle it pokes the setpoint mid-run, exactly as
// a bench controller would twist a knob on live hardware.  The streamed
// waveform — both exponential approaches, with the step in between — is
// re-emitted to hil_client_trace.dat through the ordinary trace-file
// sink, so the session's remote capture plots like any offline run.
//
// Everything rides the SCA1 session protocol (docs/api.md): open/opened,
// subscribe, pace, param, run_state, sample batches, close.  Sessions
// open paused; the subscribe and pace frames precede resume() on the
// wire, so the stream is guaranteed to cover t=0.
//
// Build & run:  ./examples/hil_client
#include <cmath>
#include <cstdio>

#include "core/scenario.hpp"
#include "server/server.hpp"
#include "tdf/connect.hpp"
#include "tdf/module.hpp"
#include "tdf/port.hpp"
#include "util/trace.hpp"

namespace core = sca::core;
namespace de = sca::de;
namespace tdf = sca::tdf;
namespace server = sca::server;
namespace wire = sca::core::wire;
using namespace sca::de::literals;

namespace {

/// First-order lag y' = (setpoint - y) / tau, discretized at the TDF
/// timestep: a plant that settles toward whatever the harness commands.
struct lag_plant : tdf::module {
    tdf::out<double> out;
    double setpoint;
    double tau_s;
    double y = 0.0;

    lag_plant(const de::module_name& nm, double sp, double tau)
        : tdf::module(nm), out("out"), setpoint(sp), tau_s(tau) {}
    void set_attributes() override { set_timestep(100.0, de::time_unit::us); }
    void processing() override {
        y += (setpoint - y) * (timestep().to_seconds() / tau_s);
        out.write(y);
    }
};

struct drain_sink : tdf::module {
    tdf::in<double> in;
    explicit drain_sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { (void)in.read(); }
};

}  // namespace

int main() {
    // The scenario registry is the server's service catalog: anything
    // defined here is openable by name from any client.
    core::scenario::define(
        "hil_plant", core::params{{"setpoint", 1.0}, {"tau_ms", 5.0}},
        [](core::testbench& tb, const core::params& p) {
            auto& plant = tb.make<lag_plant>("plant", p.number("setpoint"),
                                             p.number("tau_ms") * 1e-3);
            auto& sink = tb.make<drain_sink>("sink");
            auto& sig = connect(plant.out, sink.in);
            tb.probe("y", sig);
            tb.set_sample_period(100_us);
            tb.set_stop_time(100_ms);
            tb.measure("final_setpoint", [&plant] { return plant.setpoint; });
            tb.on_param("setpoint", [&plant](double v) { plant.setpoint = v; });
        });

    server::sim_server srv;  // ephemeral TCP port on loopback
    srv.start();
    std::printf("hil_client: sim_server listening on 127.0.0.1:%u\n", srv.port());

    auto cl = server::client::connect_tcp("127.0.0.1", srv.port());
    std::printf("  session protocol v%u; catalog:", cl.hello());
    for (const auto& e : cl.catalog()) std::printf(" %s", e.name.c_str());
    std::printf("\n");

    // Configure-then-start: the session opens paused, so the subscribe and
    // the 1x wall-clock pacing are in force before the first kernel slice.
    cl.open_async("hil_plant");
    cl.subscribe("y");
    cl.pace(1.0);
    const wire::session_info info = cl.await_opened();
    std::printf("  opened session %llu: %.0f ms of sim at 1x wall clock\n",
                static_cast<unsigned long long>(info.session_id),
                info.stop_time_s * 1e3);
    cl.resume();

    // The HIL loop: watch the stream until the plant has settled at the
    // default setpoint, then command a step to 0.25 — mid-run, over the
    // wire, against a kernel that keeps real time.
    bool poked = false;
    wire::close_info close;
    for (;;) {
        const wire::frame f = cl.read_frame();
        cl.absorb(f);
        if (f.type == wire::msg_type::close) {
            close = wire::decode_close(f.payload.data(), f.payload.size());
            break;
        }
        if (poked || !cl.has_wave("y")) continue;
        const auto& w = cl.wave("y");
        if (!w.values.empty() && std::abs(w.values.back() - 1.0) < 0.02) {
            std::printf("  plant settled at %.3f (t = %.1f ms): poking setpoint -> 0.25\n",
                        w.values.back(), w.times.back() * 1e3);
            cl.poke("setpoint", 0.25);
            poked = true;
        }
    }
    const auto& w = cl.wave("y");
    std::printf("  run finished: %llu samples streamed, %llu dropped, drift %.2f ms\n",
                static_cast<unsigned long long>(close.samples_streamed),
                static_cast<unsigned long long>(close.samples_dropped),
                close.pace_max_drift_s * 1e3);

    // Re-emit the remotely captured waveform through the standard sink.
    sca::util::tabular_trace_file trace("hil_client_trace.dat");
    trace.add_channel("y", [] { return 0.0; });  // replay fills the values
    for (std::size_t i = 0; i < w.times.size(); ++i) {
        trace.replay_row(w.times[i], {w.values[i]});
    }
    trace.close();
    std::printf("  streamed waveform written to hil_client_trace.dat\n");
    srv.stop();

    // Smoke checks (the example doubles as a ctest): the poke must have
    // landed and steered the plant to the new setpoint.
    const bool ok = poked && close.measurements.at("final_setpoint") == 0.25 &&
                    std::abs(w.values.back() - 0.25) < 0.02 &&
                    close.samples_dropped == 0;
    if (!ok) {
        std::printf("hil_client: FAILED (poked=%d, final=%.3f)\n", poked,
                    w.values.empty() ? -1.0 : w.values.back());
        return 1;
    }
    return 0;
}
