// Quickstart: a mixed-signal "hello world".
//
// A TDF sine source drives an ELN RC lowpass; a comparator squares the
// filtered wave back up and publishes it to the DE world, where a process
// counts edges.  Demonstrates the three worlds (dataflow, conservative
// continuous-time, discrete-event) and the tracing API in ~80 lines.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/simulation.hpp"
#include "eln/converter.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "lib/converters.hpp"
#include "lib/oscillator.hpp"
#include "tdf/port.hpp"
#include "util/trace.hpp"

namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;
namespace lib = sca::lib;
using namespace sca::de::literals;

namespace {

struct edge_counter : de::module {
    de::in<bool> in;
    int edges = 0;
    explicit edge_counter(const de::module_name& nm) : de::module(nm), in("in") {
        declare_method("count", [this] { ++edges; }).sensitive(in).dont_initialize();
    }
};

struct null_bool_sink : tdf::module {
    tdf::in<bool> in;
    explicit null_bool_sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { (void)in.read(); }
};

}  // namespace

int main() {
    sca::core::simulation sim;

    // 1. Dataflow stimulus: 1 kHz sine sampled at 1 MHz.
    lib::sine_source src("src", 1.0, 1e3);
    src.set_timestep(1.0, de::time_unit::us);

    // 2. Conservative-law RC lowpass (fc ~ 1.6 kHz).
    eln::network net("net");
    auto gnd = net.ground();
    auto vin = net.create_node("vin");
    auto vout = net.create_node("vout");
    eln::tdf_vsource drive("drive", net, vin, gnd);
    eln::resistor r("r", net, vin, vout, 1000.0);
    eln::capacitor c("c", net, vout, gnd, 100e-9);
    eln::tdf_vsink probe("probe", net, vout, gnd);

    // 3. Back to digital: comparator with hysteresis -> DE edge counter.
    lib::comparator cmp("cmp", 0.0, 0.05);
    de::signal<bool> square("square", false);
    cmp.enable_de_output(square);
    edge_counter counter("counter");
    counter.in.bind(square);

    tdf::signal<double> s_sine("s_sine"), s_filtered("s_filtered");
    tdf::signal<bool> s_square("s_square");
    src.out.bind(s_sine);
    drive.inp.bind(s_sine);
    probe.outp.bind(s_filtered);
    cmp.in.bind(s_filtered);
    cmp.out.bind(s_square);
    null_bool_sink bsink("bsink");
    bsink.in.bind(s_square);

    // Tracing: tabular file with three channels sampled every 10 us.
    sca::util::tabular_trace_file trace("quickstart_trace.dat");
    trace.add_channel("sine", sca::core::probe(s_sine));
    trace.add_channel("filtered", [&] { return net.voltage(vout); });
    trace.add_channel("square", sca::core::probe(square));
    sim.trace(trace, 10_us);

    sim.run(10_ms);
    trace.close();

    std::printf("quickstart: simulated %.1f ms of a TDF -> ELN -> DE loop\n",
                sim.now().to_seconds() * 1e3);
    std::printf("  filtered amplitude at vout : %.3f V (attenuated from 1.0 V)\n",
                net.voltage(vout));
    std::printf("  comparator edges seen in DE: %d (expect ~2 per 1 kHz cycle)\n",
                counter.edges);
    std::printf("  waveforms written to        quickstart_trace.dat\n");
    return 0;
}
