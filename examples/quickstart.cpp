// Quickstart: a mixed-signal "hello world" on the scenario API, built
// hierarchically.
//
// A TDF sine source drives an ELN RC lowpass; a comparator squares the
// filtered wave back up and publishes it to the DE world, where a process
// counts edges.  The RC is the reusable eln::rc_lowpass subcircuit bound by
// terminals, and every TDF edge is wired with connect() — no intermediate
// tdf::signal declarations anywhere.  Demonstrates the three worlds
// (dataflow, conservative continuous-time, discrete-event), hierarchical
// composition, and the scenario/testbench lifecycle in ~90 lines.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/scenario.hpp"
#include "eln/converter.hpp"
#include "eln/network.hpp"
#include "eln/subcircuit.hpp"
#include "lib/converters.hpp"
#include "lib/oscillator.hpp"
#include "tdf/connect.hpp"
#include "tdf/port.hpp"

namespace core = sca::core;
namespace de = sca::de;
namespace tdf = sca::tdf;
namespace eln = sca::eln;
namespace lib = sca::lib;
using namespace sca::de::literals;

namespace {

struct edge_counter : de::module {
    de::in<bool> in;
    int edges = 0;
    explicit edge_counter(const de::module_name& nm) : de::module(nm), in("in") {
        declare_method("count", [this] { ++edges; }).sensitive(in).dont_initialize();
    }
};

struct null_bool_sink : tdf::module {
    tdf::in<bool> in;
    explicit null_bool_sink(const de::module_name& nm) : tdf::module(nm), in("in") {}
    void processing() override { (void)in.read(); }
};

}  // namespace

int main() {
    auto quickstart = core::scenario::define(
        "quickstart", core::params{{"f_sine", 1e3}, {"r", 1e3}, {"c", 100e-9}},
        [](core::testbench& tb, const core::params& p) {
            // 1. Dataflow stimulus: sine sampled at 1 MHz.
            auto& src = tb.make<lib::sine_source>("src", 1.0, p.number("f_sine"));
            src.set_timestep(1.0, de::time_unit::us);

            // 2. Conservative-law RC lowpass (fc ~ 1.6 kHz at defaults) as a
            //    reusable subcircuit bound through its terminals.
            auto& net = tb.make<eln::network>("net");
            auto gnd = net.ground();
            auto vin = net.create_node("vin");
            auto vout = net.create_node("vout");
            auto& drive = tb.make<eln::tdf_vsource>("drive", net);
            drive.p(vin);
            drive.n(gnd);
            auto& rc = tb.make<eln::rc_lowpass>("rc", net, p.number("r"), p.number("c"));
            rc.in(vin);
            rc.out(vout);
            rc.ref(gnd);
            auto& probe = tb.make<eln::tdf_vsink>("probe", net);
            probe.p(vout);
            probe.n(gnd);

            // 3. Back to digital: comparator with hysteresis -> DE counter.
            auto& cmp = tb.make<lib::comparator>("cmp", 0.0, 0.05);
            auto& square = tb.make<de::signal<bool>>("square", false);
            cmp.enable_de_output(square);
            auto& counter = tb.make<edge_counter>("counter");
            counter.in.bind(square);
            auto& bsink = tb.make<null_bool_sink>("bsink");

            // TDF wiring: connect() creates the intermediate signals.
            auto& s_sine = connect(src.out, drive.inp);
            connect(probe.outp, cmp.in);
            connect(cmp.out, bsink.in);

            // Probes recorded every 10 us; measurements read at run end.
            tb.probe("sine", s_sine);
            tb.probe("filtered", [&net, vout] { return net.voltage(vout); });
            tb.probe("square", square);
            tb.set_sample_period(10_us);
            tb.set_stop_time(10_ms);
            tb.measure("vout_amplitude", [&net, vout] { return net.voltage(vout); });
            tb.measure("edges", [&counter] { return double(counter.edges); });
        });

    auto tb = quickstart.build();
    tb->run();
    tb->save_trace("quickstart_trace.dat");

    std::printf("quickstart: simulated %.1f ms of a TDF -> ELN -> DE loop\n",
                tb->sim().now().to_seconds() * 1e3);
    std::printf("  filtered amplitude at vout : %.3f V (attenuated from 1.0 V)\n",
                tb->measurement("vout_amplitude"));
    std::printf("  comparator edges seen in DE: %.0f (expect ~2 per 1 kHz cycle)\n",
                tb->measurement("edges"));
    std::printf("  waveforms written to        quickstart_trace.dat\n");
    return 0;
}
