// One model, every analysis (the paper's core rationale: a single modeling
// front end must serve static, frequency-domain, noise, and time-domain
// simulation without per-analysis rebuilds).
//
// A two-stage RC-loaded amplifier input network is defined once as a
// scenario; a single built testbench handle then drives:
//   1. dc_analysis     - quiescent operating point
//   2. ac_analysis     - small-signal transfer magnitude/phase
//   3. noise_analysis  - output-referred noise PSD and integrated rms
//   4. transient       - the same testbench's time-domain run with probes
// and finally a run_set sweeps the load corner across worker threads.
//
// Build & run:  ./examples/analysis_suite
#include <cstdio>
#include <numbers>

#include "core/ac_analysis.hpp"
#include "core/dc_analysis.hpp"
#include "core/noise_analysis.hpp"
#include "core/run_set.hpp"
#include "core/scenario.hpp"
#include "eln/network.hpp"
#include "eln/primitives.hpp"
#include "eln/sources.hpp"
#include "util/measure.hpp"

namespace core = sca::core;
namespace de = sca::de;
namespace eln = sca::eln;
namespace solver = sca::solver;
using namespace sca::de::literals;

namespace {

core::scenario define_frontend() {
    return core::scenario::define(
        "amp_frontend",
        core::params{{"r1", 10e3}, {"r2", 4.7e3}, {"c_load", 3.3e-9}, {"v_bias", 2.5}},
        [](core::testbench& tb, const core::params& p) {
            auto& net = tb.make<eln::network>("net");
            net.set_timestep(1.0, de::time_unit::us);
            auto gnd = net.ground();
            auto vin = net.create_node("vin");
            auto mid = net.create_node("mid");
            auto out = net.create_node("out");

            // Biased source with small-signal AC drive, two-stage RC.
            auto& vs = tb.make<eln::vsource>(
                "vs", net, vin, gnd,
                eln::waveform::sine(0.1, 10e3, p.number("v_bias")));
            vs.set_ac(1.0);
            tb.make<eln::resistor>("r1", net, vin, mid, p.number("r1"));
            tb.make<eln::capacitor>("c1", net, mid, gnd, 1e-9);
            tb.make<eln::resistor>("r2", net, mid, out, p.number("r2"));
            tb.make<eln::capacitor>("c_load", net, out, gnd, p.number("c_load"));

            tb.note("out", double(out.index()));
            tb.probe("vout", [&net, out] { return net.voltage(out); });
            tb.set_sample_period(5_us);
            tb.set_stop_time(2_ms);
            tb.measure("vout_rms_ac", [&tb] {
                // Remove the bias before computing the signal rms.
                auto v = tb.waveform("vout");
                const double mean = sca::util::mean(v);
                for (double& x : v) x -= mean;
                return sca::util::rms(v);
            });
        });
}

}  // namespace

int main() {
    auto sc = define_frontend();
    auto tb = sc.build();
    const auto out = static_cast<std::size_t>(tb->note("out"));

    std::printf("Analysis suite: one scenario, four analyses, zero rebuilds\n\n");

    // 1. DC operating point -------------------------------------------------
    core::dc_analysis dc(*tb);
    const auto op = dc.operating_point();
    std::printf("1) DC operating point (bias %.1f V):\n",
                tb->parameters().number("v_bias"));
    for (const auto& e : op) {
        std::printf("     %-12s %10.4f\n", e.name.c_str(), e.value);
    }

    // 2. AC sweep -----------------------------------------------------------
    core::ac_analysis ac(*tb);
    std::printf("\n2) AC transfer to 'out':\n");
    std::printf("   %12s %12s %12s\n", "f [kHz]", "|H| [dB]", "phase [deg]");
    for (double f : {1e3, 5e3, 10e3, 50e3, 200e3}) {
        const auto pt = ac.sweep(out, {f, f, 1, solver::sweep::scale::logarithmic})[0];
        std::printf("   %12.1f %12.2f %12.1f\n", f / 1e3, pt.magnitude_db(),
                    pt.phase_deg());
    }

    // 3. Noise --------------------------------------------------------------
    core::noise_analysis noise(*tb);
    const auto nres = noise.run(out, {100.0, 1e6, 100});
    std::printf("\n3) output noise 100 Hz - 1 MHz: %.3f uV rms (%zu thermal sources)\n",
                nres.integrated_rms() * 1e6, nres.source_names.size());

    // 4. Transient on the very same testbench -------------------------------
    tb->run();
    std::printf("\n4) transient 2 ms: vout signal rms %.4f V (10 kHz tone through\n"
                "   the RC cascade)\n",
                tb->measurement("vout_rms_ac"));

    // And the multi-run engine over the same definition ---------------------
    const auto table = core::run_set(sc)
                           .with_grid(core::param_grid().add(
                               "c_load", {1e-9, 3.3e-9, 10e-9, 33e-9}))
                           .keep_waveforms(false)
                           .run_all();
    std::printf("\nload-corner sweep (run_set, %zu runs):\n", table.size());
    std::printf("   %12s %14s\n", "c_load [nF]", "vout rms [V]");
    for (const auto& run : table.runs()) {
        if (!run.ok) {
            std::printf("   run %zu failed: %s\n", run.index, run.error.c_str());
            continue;
        }
        std::printf("   %12.1f %14.4f\n", run.parameters.number("c_load") * 1e9,
                    run.measurement("vout_rms_ac"));
    }
    std::printf("\nExpected shape: flat passband into the RC poles, noise set by the\n"
                "two resistors, transient rms tracking the AC magnitude at 10 kHz,\n"
                "and the sweep showing the load capacitor eating the signal.\n");
    return 0;
}
